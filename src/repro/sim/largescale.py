"""Trace-driven large-scale data-center simulation (paper §VI-B, Fig. 6).

Replays a multi-day utilization trace as per-VM CPU demands ("We treat
the utilization data of each server as the CPU demand of a VM"), places
the VMs with a consolidation algorithm (IPAC or the pMapper baseline)
invoked on a long period, applies per-step DVFS on every active server
(IPAC only — "IPAC is integrated with DVFS for power savings on a short
time scale between two consecutive invocations"), and integrates energy.

Everything between optimizer invocations is vectorized NumPy over the
(servers, VMs) arrays, so a full 7-day, 5,415-VM run takes seconds.

Accounting notes
----------------
* Only servers that host at least one VM are charged; the paper assumes
  "enough inactive servers" in reserve, so the idle pool is not part of
  the simulated data center's bill.
* A server whose hosted demand exceeds its maximum capacity runs flat
  out (rationed VMs, full power); those server-steps are reported as
  ``overload_server_steps`` — the SLA pressure that IPAC's next
  invocation relieves.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.server import Server
from repro.core.optimizer.types import PlacementPlan, PlacementProblem
from repro.faults import FaultSchedule
from repro.traces.trace import UtilizationTrace
from repro.util.rng import RngLike
from repro.util.validation import check_in_range

__all__ = ["LargeScaleConfig", "LargeScaleResult", "run_largescale"]

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class LargeScaleConfig:
    """Parameters of one large-scale run.

    ``scheme`` selects the consolidation algorithm: ``"ipac"`` (paper),
    ``"pmapper"`` (baseline), or ``"pac"`` (full re-pack each time —
    ablation).  ``dvfs=None`` follows the paper: on for IPAC/PAC, off
    for pMapper; pass an explicit bool to ablate.

    ``ondemand_relief`` enables the paper's §III integration point: a
    fast greedy overload-relief pass (``repro.core.optimizer.ondemand``)
    runs every trace step *between* full optimizer invocations, moving
    VMs off servers that an unexpected workload increase saturated.

    ``provisioning`` selects the demand the optimizer packs against:
    ``"current"`` (paper: the demand at invocation time) or a forecast
    of the peak over the coming inter-invocation window (``"ewma_peak"``
    or ``"holt"`` — see :mod:`repro.traces.forecast`), which trades a
    little packing density for far fewer mid-window overloads.

    ``scheme="static_peak"`` is the no-reconfiguration reference: one
    placement at t=0 provisioned for each VM's whole-trace peak, then
    never touched (and no DVFS) — what a conservative operator without
    consolidation automation would run.

    ``faults`` attaches a deterministic fault schedule (see
    :mod:`repro.faults`).  Supported here: server crash/recovery
    (hosted VMs are evicted and immediately re-packed onto the
    survivors via Minimum Slack), thermal throttle (the server's
    effective capacity — and its DVFS levels — shrink by the fraction),
    and migration failure (planned moves revert to their source with
    the event's probability).  Sensor faults are no-ops in this
    trace-driven harness (demands come from the trace, not a sensor).
    ``None`` (default) leaves the run byte-identical to a fault-free
    build.

    ``attribute_power=True`` splits every hosting server's per-step
    power among its placed VMs in proportion to demand (equal split on
    a zero-load server) and accumulates per-VM energy — the large-scale
    counterpart of the testbed's per-tier attribution.  Read-only: it
    never changes placement, DVFS, or the power/energy totals; the
    result's ``attribution`` entry reconciles with ``total_energy_wh``
    (migration energy is accounted separately).

    ``minslack_prune`` enables the Minimum Slack dominance bound
    (bit-identical placements, fewer search nodes); ``incremental``
    seeds each optimizer invocation's per-server searches with the
    previous placement (an opt-in fast lane — placements may differ
    from a from-scratch run, but never use more active servers than
    re-using the previous selections would).
    """

    n_vms: int = 100
    n_servers: int = 3000
    type_weights: Tuple[float, ...] = (0.03, 0.27, 0.70)
    vm_peak_range_ghz: Tuple[float, float] = (0.5, 2.0)
    vm_memory_choices_mb: Tuple[int, ...] = (512, 1024, 1536, 2048)
    optimize_every_steps: int = 16
    scheme: str = "ipac"
    dvfs: Optional[bool] = None
    ondemand_relief: bool = False
    provisioning: str = "current"
    arbitrator_headroom: float = 0.95
    target_utilization: float = 0.9
    minslack_max_steps: int = 3000
    minslack_epsilon_ghz: float = 0.1
    minslack_prune: bool = True
    incremental: bool = False
    migration_overhead_w: float = 30.0
    migration_bandwidth_mbps: float = 1000.0
    faults: Optional[FaultSchedule] = None
    attribute_power: bool = False
    #: Control-path selector shared with the testbed/scenario schema.
    #: The large-scale sysid (forecaster) and actuation phases are
    #: *already* fleet-vectorized array code with no per-app MPC/RLS
    #: instances, so both values produce bit-identical runs here; the
    #: field is validated and surfaced (run header log) so one scenario
    #: schema covers every harness, sharded pods included.
    control_mode: str = "fleet"
    seed: int = 7

    def __post_init__(self):
        if self.control_mode not in ("fleet", "scalar"):
            raise ValueError(
                f"control_mode must be 'fleet' or 'scalar', "
                f"got {self.control_mode!r}"
            )
        if self.n_vms < 1:
            raise ValueError(f"n_vms must be >= 1, got {self.n_vms}")
        if self.n_servers < 1:
            raise ValueError(f"n_servers must be >= 1, got {self.n_servers}")
        if self.scheme not in ("ipac", "pmapper", "pac", "static_peak"):
            raise ValueError(f"unknown scheme {self.scheme!r}")
        if self.provisioning not in ("current", "ewma_peak", "holt"):
            raise ValueError(f"unknown provisioning {self.provisioning!r}")
        if self.optimize_every_steps < 1:
            raise ValueError(
                f"optimize_every_steps must be >= 1, got {self.optimize_every_steps}"
            )
        check_in_range("arbitrator_headroom", self.arbitrator_headroom, 0.1, 1.0)
        check_in_range("target_utilization", self.target_utilization, 0.1, 1.0)
        lo, hi = self.vm_peak_range_ghz
        if not 0 < lo <= hi:
            raise ValueError(f"bad vm_peak_range_ghz {self.vm_peak_range_ghz}")
        if self.migration_overhead_w < 0:
            raise ValueError(
                f"migration_overhead_w must be >= 0, got {self.migration_overhead_w}"
            )
        if self.migration_bandwidth_mbps <= 0:
            raise ValueError(
                f"migration_bandwidth_mbps must be > 0, got {self.migration_bandwidth_mbps}"
            )

    @property
    def dvfs_enabled(self) -> bool:
        """Paper default: DVFS rides along with IPAC/PAC, not pMapper."""
        if self.dvfs is not None:
            return self.dvfs
        return self.scheme in ("ipac", "pac")


@dataclass
class LargeScaleResult:
    """Aggregates of one run (energy in Wh, durations in steps)."""

    scheme: str
    n_vms: int
    n_steps: int
    step_s: float
    total_energy_wh: float
    energy_per_vm_wh: float
    migrations: int
    mean_active_servers: float
    max_active_servers: int
    overload_server_steps: int
    unplaced_vm_steps: int
    power_series_w: np.ndarray
    active_series: np.ndarray
    info: Dict[str, float] = field(default_factory=dict)
    #: Per-VM energy attribution summary (``attribute_power=True`` runs
    #: only); reconciles with ``total_energy_wh`` minus migration energy.
    attribution: Optional[Dict[str, object]] = None


def run_largescale(
    trace: UtilizationTrace,
    config: LargeScaleConfig | None = None,
    servers: Optional[Sequence[Server]] = None,
    rng: RngLike = None,
    optimizer: Optional[Callable[[PlacementProblem], PlacementPlan]] = None,
) -> LargeScaleResult:
    """Run one scheme over the trace; returns energy and placement stats.

    ``servers`` may be supplied to share one pool across scheme
    comparisons (identical hardware for IPAC and pMapper); otherwise a
    pool is drawn from ``config.seed`` — so two runs with the same seed
    see the same hardware either way.  ``optimizer`` overrides the
    scheme-derived consolidation callable (for ablations with custom
    IPAC configurations, cost policies, or entirely new algorithms).

    This is a thin configuration of the control-plane kernel: it builds
    a :class:`repro.engine.largescale_backend.LargeScaleBackend`, runs
    the :class:`repro.engine.ControlPlane` to completion, and returns
    the backend's aggregates.  Use
    :func:`repro.engine.build_largescale_engine` directly for stepwise
    execution or checkpoint/resume.
    """
    from repro.engine.largescale_backend import build_largescale_engine

    engine, backend = build_largescale_engine(
        trace, config, servers=servers, rng=rng, optimizer=optimizer
    )
    backend.emit_run_config()
    engine.run()
    return backend.result()
