"""Trace-driven large-scale data-center simulation (paper §VI-B, Fig. 6).

Replays a multi-day utilization trace as per-VM CPU demands ("We treat
the utilization data of each server as the CPU demand of a VM"), places
the VMs with a consolidation algorithm (IPAC or the pMapper baseline)
invoked on a long period, applies per-step DVFS on every active server
(IPAC only — "IPAC is integrated with DVFS for power savings on a short
time scale between two consecutive invocations"), and integrates energy.

Everything between optimizer invocations is vectorized NumPy over the
(servers, VMs) arrays, so a full 7-day, 5,415-VM run takes seconds.

Accounting notes
----------------
* Only servers that host at least one VM are charged; the paper assumes
  "enough inactive servers" in reserve, so the idle pool is not part of
  the simulated data center's bill.
* A server whose hosted demand exceeds its maximum capacity runs flat
  out (rationed VMs, full power); those server-steps are reported as
  ``overload_server_steps`` — the SLA pressure that IPAC's next
  invocation relieves.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.catalog import STANDARD_SERVER_TYPES, make_server_pool
from repro.cluster.migration import LiveMigrationModel
from repro.cluster.server import Server
from repro.core.optimizer.ipac import IPACConfig, ipac
from repro.core.optimizer.minslack import MinSlackConfig
from repro.core.optimizer.ondemand import OnDemandConfig, relieve_overloads
from repro.core.optimizer.pac import PACConfig, pac
from repro.core.optimizer.pmapper import PMapperConfig, pmapper
from repro.core.optimizer.types import (
    PlacementPlan,
    PlacementProblem,
    ServerInfo,
    make_vm_infos,
)
from repro.faults import FaultSchedule
from repro.obs import get_telemetry
from repro.traces.forecast import DemandForecaster, EwmaPeakForecaster, HoltForecaster
from repro.traces.trace import UtilizationTrace
from repro.util.rng import RngLike, ensure_rng
from repro.util.validation import check_in_range, check_positive

__all__ = ["LargeScaleConfig", "LargeScaleResult", "run_largescale"]

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class LargeScaleConfig:
    """Parameters of one large-scale run.

    ``scheme`` selects the consolidation algorithm: ``"ipac"`` (paper),
    ``"pmapper"`` (baseline), or ``"pac"`` (full re-pack each time —
    ablation).  ``dvfs=None`` follows the paper: on for IPAC/PAC, off
    for pMapper; pass an explicit bool to ablate.

    ``ondemand_relief`` enables the paper's §III integration point: a
    fast greedy overload-relief pass (``repro.core.optimizer.ondemand``)
    runs every trace step *between* full optimizer invocations, moving
    VMs off servers that an unexpected workload increase saturated.

    ``provisioning`` selects the demand the optimizer packs against:
    ``"current"`` (paper: the demand at invocation time) or a forecast
    of the peak over the coming inter-invocation window (``"ewma_peak"``
    or ``"holt"`` — see :mod:`repro.traces.forecast`), which trades a
    little packing density for far fewer mid-window overloads.

    ``scheme="static_peak"`` is the no-reconfiguration reference: one
    placement at t=0 provisioned for each VM's whole-trace peak, then
    never touched (and no DVFS) — what a conservative operator without
    consolidation automation would run.

    ``faults`` attaches a deterministic fault schedule (see
    :mod:`repro.faults`).  Supported here: server crash/recovery
    (hosted VMs are evicted and immediately re-packed onto the
    survivors via Minimum Slack), thermal throttle (the server's
    effective capacity — and its DVFS levels — shrink by the fraction),
    and migration failure (planned moves revert to their source with
    the event's probability).  Sensor faults are no-ops in this
    trace-driven harness (demands come from the trace, not a sensor).
    ``None`` (default) leaves the run byte-identical to a fault-free
    build.

    ``minslack_prune`` enables the Minimum Slack dominance bound
    (bit-identical placements, fewer search nodes); ``incremental``
    seeds each optimizer invocation's per-server searches with the
    previous placement (an opt-in fast lane — placements may differ
    from a from-scratch run, but never use more active servers than
    re-using the previous selections would).
    """

    n_vms: int = 100
    n_servers: int = 3000
    type_weights: Tuple[float, ...] = (0.03, 0.27, 0.70)
    vm_peak_range_ghz: Tuple[float, float] = (0.5, 2.0)
    vm_memory_choices_mb: Tuple[int, ...] = (512, 1024, 1536, 2048)
    optimize_every_steps: int = 16
    scheme: str = "ipac"
    dvfs: Optional[bool] = None
    ondemand_relief: bool = False
    provisioning: str = "current"
    arbitrator_headroom: float = 0.95
    target_utilization: float = 0.9
    minslack_max_steps: int = 3000
    minslack_epsilon_ghz: float = 0.1
    minslack_prune: bool = True
    incremental: bool = False
    migration_overhead_w: float = 30.0
    migration_bandwidth_mbps: float = 1000.0
    faults: Optional[FaultSchedule] = None
    seed: int = 7

    def __post_init__(self):
        if self.n_vms < 1:
            raise ValueError(f"n_vms must be >= 1, got {self.n_vms}")
        if self.n_servers < 1:
            raise ValueError(f"n_servers must be >= 1, got {self.n_servers}")
        if self.scheme not in ("ipac", "pmapper", "pac", "static_peak"):
            raise ValueError(f"unknown scheme {self.scheme!r}")
        if self.provisioning not in ("current", "ewma_peak", "holt"):
            raise ValueError(f"unknown provisioning {self.provisioning!r}")
        if self.optimize_every_steps < 1:
            raise ValueError(
                f"optimize_every_steps must be >= 1, got {self.optimize_every_steps}"
            )
        check_in_range("arbitrator_headroom", self.arbitrator_headroom, 0.1, 1.0)
        check_in_range("target_utilization", self.target_utilization, 0.1, 1.0)
        lo, hi = self.vm_peak_range_ghz
        if not 0 < lo <= hi:
            raise ValueError(f"bad vm_peak_range_ghz {self.vm_peak_range_ghz}")
        if self.migration_overhead_w < 0:
            raise ValueError(
                f"migration_overhead_w must be >= 0, got {self.migration_overhead_w}"
            )
        if self.migration_bandwidth_mbps <= 0:
            raise ValueError(
                f"migration_bandwidth_mbps must be > 0, got {self.migration_bandwidth_mbps}"
            )

    @property
    def dvfs_enabled(self) -> bool:
        """Paper default: DVFS rides along with IPAC/PAC, not pMapper."""
        if self.dvfs is not None:
            return self.dvfs
        return self.scheme in ("ipac", "pac")


@dataclass
class LargeScaleResult:
    """Aggregates of one run (energy in Wh, durations in steps)."""

    scheme: str
    n_vms: int
    n_steps: int
    step_s: float
    total_energy_wh: float
    energy_per_vm_wh: float
    migrations: int
    mean_active_servers: float
    max_active_servers: int
    overload_server_steps: int
    unplaced_vm_steps: int
    power_series_w: np.ndarray
    active_series: np.ndarray
    info: Dict[str, float] = field(default_factory=dict)


def _build_optimizer(config: LargeScaleConfig) -> Callable[[PlacementProblem], PlacementPlan]:
    pac_cfg = PACConfig(
        minslack=MinSlackConfig(
            epsilon_ghz=config.minslack_epsilon_ghz,
            max_steps=config.minslack_max_steps,
            prune=config.minslack_prune,
        ),
        target_utilization=config.target_utilization,
        incremental=config.incremental,
    )
    if config.scheme == "ipac":
        ipac_cfg = IPACConfig(pac=pac_cfg)
        return lambda p: ipac(p, ipac_cfg)
    if config.scheme in ("pac", "static_peak"):
        return lambda p: pac(p, None, pac_cfg)
    pm_cfg = PMapperConfig(target_utilization=config.target_utilization)
    return lambda p: pmapper(p, pm_cfg)


def run_largescale(
    trace: UtilizationTrace,
    config: LargeScaleConfig | None = None,
    servers: Optional[Sequence[Server]] = None,
    rng: RngLike = None,
    optimizer: Optional[Callable[[PlacementProblem], PlacementPlan]] = None,
) -> LargeScaleResult:
    """Run one scheme over the trace; returns energy and placement stats.

    ``servers`` may be supplied to share one pool across scheme
    comparisons (identical hardware for IPAC and pMapper); otherwise a
    pool is drawn from ``config.seed`` — so two runs with the same seed
    see the same hardware either way.  ``optimizer`` overrides the
    scheme-derived consolidation callable (for ablations with custom
    IPAC configurations, cost policies, or entirely new algorithms).
    """
    config = config or LargeScaleConfig()
    generator = ensure_rng(rng if rng is not None else config.seed)
    if config.n_vms > trace.n_series:
        raise ValueError(
            f"trace has {trace.n_series} series < n_vms={config.n_vms}"
        )
    sub = trace.subset(config.n_vms)
    peaks = generator.uniform(*config.vm_peak_range_ghz, size=config.n_vms)
    memories = generator.choice(
        np.asarray(config.vm_memory_choices_mb, dtype=float), size=config.n_vms
    )
    demands = sub.demands_ghz(peaks)  # (n_vms, n_steps)
    n_vms, n_steps = demands.shape
    dt_s = sub.interval_s

    if servers is None:
        servers = make_server_pool(
            config.n_servers,
            STANDARD_SERVER_TYPES,
            rng=np.random.default_rng(config.seed + 1),
            type_weights=config.type_weights,
        )
    server_list = list(servers)
    n_srv = len(server_list)

    # Static per-server arrays.
    srv_max_cap = np.asarray([s.spec.max_capacity_ghz for s in server_list])
    srv_mem = np.asarray([float(s.spec.memory_mb) for s in server_list])
    srv_idle = np.asarray([s.spec.power.idle_w for s in server_list])
    srv_busy = np.asarray([s.spec.power.busy_w for s in server_list])
    srv_eff = np.asarray([s.spec.power_efficiency for s in server_list])
    srv_sleep = np.asarray([s.spec.power.sleep_w for s in server_list])
    srv_exp = np.asarray([s.spec.power.dvfs_exponent for s in server_list])
    srv_kidle = np.asarray([s.spec.power.idle_dvfs_fraction for s in server_list])
    srv_fmax = np.asarray([s.spec.cpu.max_freq_ghz for s in server_list])

    # Group servers by spec for vectorized DVFS level selection.
    spec_groups: Dict[int, List[int]] = {}
    spec_caps: Dict[int, np.ndarray] = {}
    for i, s in enumerate(server_list):
        key = id(s.spec)
        spec_groups.setdefault(key, []).append(i)
        if key not in spec_caps:
            spec_caps[key] = np.asarray(
                [s.spec.cpu.capacity_at(f) for f in s.spec.cpu.freq_levels_ghz]
            )
    group_index = [(np.asarray(idx), spec_caps[key]) for key, idx in spec_groups.items()]

    # Static optimizer views, prebuilt in both power states so the
    # per-step snapshot only selects (never constructs) ServerInfo.
    server_infos = tuple(
        ServerInfo(
            server_id=s.server_id,
            max_capacity_ghz=srv_max_cap[i],
            memory_mb=srv_mem[i],
            efficiency=srv_eff[i],
            active=False,
            idle_w=srv_idle[i],
            busy_w=srv_busy[i],
            sleep_w=srv_sleep[i],
        )
        for i, s in enumerate(server_list)
    )
    server_infos_on = tuple(
        ServerInfo(
            si.server_id, si.max_capacity_ghz, si.memory_mb, si.efficiency,
            True, si.idle_w, si.busy_w, si.sleep_w,
        )
        for si in server_infos
    )
    # Efficiency order as indices (the packing order is a property of
    # the pool, not of the per-step active flags).
    eff_order = sorted(
        range(n_srv), key=lambda i: (-srv_eff[i], server_list[i].server_id)
    )
    vm_ids = [f"vm{j:05d}" for j in range(n_vms)]
    sid_to_idx = {s.server_id: i for i, s in enumerate(server_list)}
    idx_to_sid = [s.server_id for s in server_list]

    if optimizer is None:
        optimizer = _build_optimizer(config)
    tel = get_telemetry()
    logger.info(
        "largescale run: scheme=%s, %d VMs on %d servers, %d steps of %.0fs",
        config.scheme, n_vms, n_srv, n_steps, dt_s,
    )
    tel.event(
        "run_config",
        harness="largescale",
        scheme=config.scheme,
        n_vms=n_vms,
        n_servers=n_srv,
        n_steps=n_steps,
        step_s=dt_s,
        dvfs=config.dvfs_enabled,
        provisioning=config.provisioning,
        seed=config.seed,
    )

    def _invoke_optimizer(problem: PlacementProblem, time_s: float) -> PlacementPlan:
        """Run the consolidation optimizer, traced + logged per invocation."""
        with tel.span("largescale.optimize", scheme=config.scheme) as sp:
            plan = optimizer(problem)
            sp.annotate(moves=plan.n_moves, unplaced=len(plan.unplaced))
        if tel.enabled:
            tel.count("optimizer.invocations")
            tel.count("optimizer.migrations", plan.n_moves)
            tel.event(
                "optimizer_invocation",
                time_s=time_s,
                moves=plan.n_moves,
                wake=len(plan.wake),
                sleep=len(plan.sleep),
                unplaced=len(plan.unplaced),
                info=dict(plan.info),
            )
        logger.debug(
            "optimizer t=%.0fs: %d moves, wake %d, sleep %d",
            time_s, plan.n_moves, len(plan.wake), len(plan.sleep),
        )
        return plan

    assignment = np.full(n_vms, -1, dtype=int)  # server index per VM
    prev_hosting = np.zeros(n_srv, dtype=bool)  # for power-transition events
    migrations = 0
    overload_server_steps = 0
    unplaced_vm_steps = 0
    power_series = np.empty(n_steps)
    active_series = np.empty(n_steps, dtype=int)
    total_energy_wh = 0.0
    dvfs_on = config.dvfs_enabled

    # Fault state (only consulted when a schedule is attached).
    fault_timeline = config.faults.cursor() if config.faults else None
    fault_rng = (
        np.random.default_rng(config.faults.seed) if config.faults else None
    )
    srv_frac = np.ones(n_srv)  # thermal-throttle capacity fractions
    srv_failed = np.zeros(n_srv, dtype=bool)
    active_migration_faults: List = []

    def _build_problem(demand_now: np.ndarray) -> PlacementProblem:
        vm_infos = make_vm_infos(vm_ids, demand_now, memories)
        mapping = {
            vm_ids[j]: idx_to_sid[assignment[j]]
            for j in range(n_vms)
            if assignment[j] >= 0
        }
        hosting = set(mapping.values())
        if config.faults is not None:
            # Crashed servers disappear from the snapshot; throttled
            # ones shrink (capacity and efficiency scale together).
            infos = tuple(
                ServerInfo(
                    si.server_id, si.max_capacity_ghz * srv_frac[i],
                    si.memory_mb, si.efficiency * srv_frac[i],
                    si.server_id in hosting,
                    si.idle_w, si.busy_w, si.sleep_w,
                )
                for i, si in enumerate(server_infos)
                if not srv_failed[i]
            )
            return PlacementProblem(infos, vm_infos, mapping)
        # Fault-free fast lane: select the prebuilt on/off snapshot per
        # server; the invariants hold by construction, so skip the
        # O(n) re-validation and attach the precomputed packing order.
        infos = tuple(
            server_infos_on[i] if idx_to_sid[i] in hosting else server_infos[i]
            for i in range(n_srv)
        )
        return PlacementProblem.trusted(
            infos,
            vm_infos,
            mapping,
            servers_sorted=tuple(infos[i] for i in eff_order),
        )

    def _apply_mapping(
        final_mapping: Dict[str, str], time_s: float = 0.0
    ) -> np.ndarray:
        new_assignment = np.full(n_vms, -1, dtype=int)
        for vm_id, sid in final_mapping.items():
            new_assignment[sid_to_vmidx[vm_id]] = sid_to_idx[sid]
        if active_migration_faults:
            moved = np.nonzero(
                (assignment >= 0)
                & (new_assignment >= 0)
                & (assignment != new_assignment)
            )[0]
            for j in moved:
                for ev in active_migration_faults:
                    if fault_rng.random() < ev.probability:
                        tel.count("faults.migrations_disrupted")
                        tel.event(
                            "migration_failed",
                            time_s=time_s,
                            vm=vm_ids[j],
                            source=idx_to_sid[assignment[j]],
                            target=idx_to_sid[new_assignment[j]],
                        )
                        new_assignment[j] = assignment[j]  # stays on source
                        break
        return new_assignment

    migration_model = LiveMigrationModel(bandwidth_mbps=config.migration_bandwidth_mbps)
    migration_energy_wh = 0.0

    def _migration_energy(plan) -> float:
        """Source+target burn ``migration_overhead_w`` for each transfer."""
        total_s = sum(
            migration_model.duration_s(memories[sid_to_vmidx[m.vm_id]])
            for m in plan.migrations
            if m.source_id is not None
        )
        return 2.0 * config.migration_overhead_w * total_s / 3600.0

    evac_pac_cfg = PACConfig(
        minslack=MinSlackConfig(
            epsilon_ghz=config.minslack_epsilon_ghz,
            max_steps=config.minslack_max_steps,
            prune=config.minslack_prune,
        ),
        target_utilization=config.target_utilization,
        incremental=config.incremental,
    )

    def _apply_fault_transitions(step: int, demand_now: np.ndarray) -> None:
        """Perform every fault begin/end due at this trace step."""
        nonlocal assignment
        time_s = step * dt_s
        for tr in fault_timeline.advance(time_s):
            ev = tr.event
            i = sid_to_idx.get(ev.target) if ev.target is not None else None
            if ev.target is not None and i is None:
                logger.warning("fault targets unknown server %s; skipped", ev.target)
                continue
            if tr.phase == "begin":
                if ev.kind == "server_crash":
                    srv_failed[i] = True
                    evicted_idx = np.nonzero(assignment == i)[0]
                    assignment[evicted_idx] = -1
                    evicted = [vm_ids[j] for j in evicted_idx]
                    tel.count("faults.injected")
                    tel.event(
                        "fault_injected", time_s=time_s, fault=ev.kind,
                        target=ev.target, duration_s=ev.duration_s,
                        evicted=evicted,
                    )
                    logger.warning(
                        "fault t=%.0fs: server %s crashed, %d VMs evicted",
                        time_s, ev.target, len(evicted),
                    )
                    if evicted:
                        # Emergency evacuation: Minimum Slack onto the
                        # survivors, without waiting for the optimizer.
                        plan = pac(_build_problem(demand_now), evicted, evac_pac_cfg)
                        assignment = _apply_mapping(plan.final_mapping, time_s)
                        tel.count("manager.evacuations")
                        tel.count("manager.evacuated_vms", len(evicted))
                        tel.event(
                            "evacuation", time_s=time_s, server=ev.target,
                            vms=evicted,
                            placed=[v for v in evicted if v in plan.final_mapping],
                            unplaced=list(plan.unplaced),
                            woke=list(plan.wake),
                        )
                elif ev.kind == "server_recovery":
                    srv_failed[i] = False
                    srv_frac[i] = 1.0
                    tel.count("faults.recovered")
                    tel.event(
                        "fault_recovered", time_s=time_s,
                        fault="server_crash", target=ev.target,
                    )
                elif ev.kind == "thermal_throttle":
                    srv_frac[i] = ev.fraction
                    tel.count("faults.injected")
                    tel.event(
                        "fault_injected", time_s=time_s, fault=ev.kind,
                        target=ev.target, duration_s=ev.duration_s,
                        fraction=ev.fraction,
                    )
                elif ev.kind == "migration_failure":
                    active_migration_faults.append(ev)
                    tel.count("faults.injected")
                    tel.event(
                        "fault_injected", time_s=time_s, fault=ev.kind,
                        target=ev.target, duration_s=ev.duration_s,
                        probability=ev.probability,
                    )
                else:  # sensor faults: no response-time sensor here
                    logger.warning(
                        "fault %s has no effect in the trace-driven harness",
                        ev.kind,
                    )
            else:  # end
                if ev.kind == "server_crash":
                    srv_failed[i] = False
                    srv_frac[i] = 1.0
                elif ev.kind == "thermal_throttle":
                    srv_frac[i] = 1.0
                elif ev.kind == "migration_failure":
                    active_migration_faults.remove(ev)
                elif ev.kind in ("sensor_dropout", "sensor_noise"):
                    continue
                tel.count("faults.recovered")
                tel.event(
                    "fault_recovered", time_s=time_s, fault=ev.kind,
                    target=ev.target,
                )

    sid_to_vmidx = {vm_ids[j]: j for j in range(n_vms)}
    relief_config = OnDemandConfig(
        target_utilization=config.target_utilization,
        receiver_utilization=config.target_utilization,
    )
    relief_moves = 0
    forecaster: Optional[DemandForecaster] = None
    if config.provisioning == "ewma_peak":
        forecaster = EwmaPeakForecaster(n_vms)
    elif config.provisioning == "holt":
        forecaster = HoltForecaster(n_vms)
    static_peak = config.scheme == "static_peak"

    for step in range(n_steps):
        demand_now = demands[:, step]
        if fault_timeline is not None:
            _apply_fault_transitions(step, demand_now)
        if forecaster is not None:
            forecaster.update(demand_now)

        if step == 0 and static_peak:
            # One conservative placement against the whole-trace peak.
            plan = _invoke_optimizer(_build_problem(demands.max(axis=1)), 0.0)
            migrations += plan.n_moves
            migration_energy_wh += _migration_energy(plan)
            assignment = _apply_mapping(plan.final_mapping)
        elif not static_peak and step % config.optimize_every_steps == 0:
            demand_for_packing = demand_now
            if forecaster is not None:
                demand_for_packing = np.maximum(
                    demand_now,
                    forecaster.forecast_peak(config.optimize_every_steps),
                )
                demand_for_packing = np.minimum(demand_for_packing, peaks)
            plan = _invoke_optimizer(_build_problem(demand_for_packing), step * dt_s)
            migrations += plan.n_moves
            migration_energy_wh += _migration_energy(plan)
            assignment = _apply_mapping(plan.final_mapping, step * dt_s)
        elif config.ondemand_relief:
            placed_now = assignment >= 0
            loads_now = np.bincount(
                assignment[placed_now], weights=demand_now[placed_now],
                minlength=n_srv,
            )
            if np.any(loads_now > srv_max_cap + 1e-9):
                with tel.span("largescale.relief"):
                    plan = relieve_overloads(_build_problem(demand_now), relief_config)
                relief_moves += plan.n_moves
                migration_energy_wh += _migration_energy(plan)
                assignment = _apply_mapping(plan.final_mapping, step * dt_s)
                tel.event(
                    "relief", time_s=step * dt_s, moves=plan.n_moves,
                )

        placed = assignment >= 0
        unplaced_vm_steps += int(np.count_nonzero(~placed))
        loads = np.bincount(
            assignment[placed], weights=demand_now[placed], minlength=n_srv
        )
        hosting_mask = (
            np.bincount(assignment[placed], minlength=n_srv) > 0
        )

        # DVFS: lowest level covering load / headroom (or pinned at max).
        # Under a thermal throttle every level delivers only srv_frac of
        # its nominal capacity, so the selection works in nominal terms
        # (needed / frac) and the chosen capacity is scaled back down.
        eff_max = srv_max_cap if config.faults is None else srv_max_cap * srv_frac
        cap = eff_max.copy()
        freq_ratio = np.ones(n_srv)
        if dvfs_on:
            needed = loads / config.arbitrator_headroom
            if config.faults is not None:
                needed = needed / np.maximum(srv_frac, 1e-9)
            for idx, caps in group_index:
                level = np.searchsorted(caps, needed[idx] - 1e-9, side="left")
                level = np.minimum(level, len(caps) - 1)
                cap[idx] = caps[level]
            if config.faults is not None:
                cap = cap * srv_frac
            # cap = freq * cores; ratio = nominal cap / nominal max cap.
            freq_ratio = cap / eff_max

        overload = loads > eff_max + 1e-9
        overload_server_steps += int(np.count_nonzero(overload & hosting_mask))
        util = np.minimum(loads / np.maximum(cap, 1e-12), 1.0)
        scale = freq_ratio**srv_exp
        idle_f = srv_idle * (1.0 - srv_kidle * (1.0 - scale))
        power = idle_f + (srv_busy - srv_idle) * scale * util
        power_total = float(power[hosting_mask].sum())
        power_series[step] = power_total
        active_series[step] = int(np.count_nonzero(hosting_mask))
        total_energy_wh += power_total * dt_s / 3600.0
        if tel.enabled:
            time_s = step * dt_s
            # One event per server power transition (on <-> off).
            changed = np.nonzero(hosting_mask != prev_hosting)[0]
            for i in changed:
                tel.event(
                    "server_power",
                    time_s=time_s,
                    server=idx_to_sid[i],
                    state="on" if hosting_mask[i] else "off",
                )
            prev_hosting = hosting_mask.copy()
            tel.event(
                "largescale.step",
                time_s=time_s,
                power_w=power_total,
                active_servers=int(active_series[step]),
                overloaded_servers=int(np.count_nonzero(overload & hosting_mask)),
            )

    total_energy_wh += migration_energy_wh
    logger.info(
        "largescale run complete: %.1f Wh total (%.2f Wh/VM), %d migrations, "
        "%d overloaded server-steps",
        total_energy_wh, total_energy_wh / n_vms, migrations,
        overload_server_steps,
    )
    return LargeScaleResult(
        scheme=config.scheme,
        n_vms=n_vms,
        n_steps=n_steps,
        step_s=dt_s,
        total_energy_wh=total_energy_wh,
        energy_per_vm_wh=total_energy_wh / n_vms,
        migrations=migrations,
        mean_active_servers=float(active_series.mean()),
        max_active_servers=int(active_series.max()),
        overload_server_steps=overload_server_steps,
        unplaced_vm_steps=unplaced_vm_steps,
        power_series_w=power_series,
        active_series=active_series,
        info={
            "dvfs": float(dvfs_on),
            "relief_moves": float(relief_moves),
            "migration_energy_wh": migration_energy_wh,
        },
    )
