"""Fluid/MVA fast-forward hybrid plant.

The control loop (paper §V) only consumes *per-period* statistics —
mean / percentile response times, throughput, per-tier CPU usage — yet
the testbed plant simulates every individual request to produce them.
Fluid-limit analysis of processor-sharing queues (Cho & Ko, arXiv
1811.01611) shows that a PS queue under slowly time-varying load is
accurately tracked by its fluid/analytic limit; between control periods
the closed-loop workload is exactly that quasi-static regime.  The
closed multi-tier network of PS stations is product-form, so the exact
MVA recursion in :mod:`repro.apps.queueing` gives the *same mean*
response time and throughput the DES converges to — without simulating
any requests.

:class:`HybridPlant` wraps a :class:`repro.apps.rubbos.MultiTierApp`
and, period by period, decides between:

* **exact** — run the embedded DES for the period (bit-identical to a
  plain run, since the wrapper forwards without re-seeding anything);
* **mva** — leave the DES parked and synthesize the period's
  :class:`~repro.sim.metrics.PeriodStats` from the MVA fixed point at
  the *current* allocations and concurrency.

Switching policy
----------------
A period is simulated exactly when any of these hold:

* a transient was signalled since the last period: a concurrency step,
  an injected fault (tier degradation change), or a per-tier relative
  allocation change above ``alloc_tolerance``;
* any tier is currently degraded (faults are transients by definition);
* a tier has an admission cap (``max_concurrency``), which MVA does not
  model — such apps run exact permanently;
* fewer than ``settle_periods`` consecutive quasi-static exact periods
  have elapsed since the last transient (the DES must re-reach steady
  state before its analytic limit is trusted).

Everything else fast-forwards through MVA.  Allocation changes *below*
``alloc_tolerance`` do not trigger a fallback — the MVA point is
recomputed each period from the latest allocations, which is precisely
the quasi-static fluid approximation.

Reconciliation at switches
--------------------------
* **Latency moments** — MVA yields means only.  The p50/p90/max columns
  of a synthesized period are scaled from the mean using the moment
  ratios (p50/mean, p90/mean, max/mean) measured in the most recent
  exact period with at least ``min_reconcile_samples`` completions, so
  percentile-driven SLA metrics stay continuous across a switch.
* **Request counts** — the fractional part of ``throughput × duration``
  is carried between MVA periods, so long fast-forwarded stretches
  complete the same total request count the fluid limit predicts, with
  no systematic floor() drift.
* **DES state** — the DES is *parked*, not discarded: in-flight
  requests and think timers freeze, and the next exact period resumes
  from that state.  Under the quasi-static assumption the parked state
  is statistically exchangeable with the state at the end of the
  skipped stretch.  (Consequence: the embedded DES clock lags control
  time by the total fast-forwarded duration; request-trace timestamps
  are in DES time.)

Every switch emits a ``hybrid_switch`` telemetry event; per-mode period
counts are kept as telemetry counters and in :meth:`HybridPlant.summary`
(surfaced as ``TestbedResult.hybrid``).  Accuracy in pure-MVA segments
is pinned by ``tests/test_hybrid.py``: per-period mean response times
within the documented tolerance of an exact-DES run of the same
scenario (see ``docs/PERFORMANCE.md``).
"""

from __future__ import annotations

import logging
import math
from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

import numpy as np

from repro.apps.queueing import approx_mva_closed_network, mva_closed_network
from repro.apps.rubbos import MultiTierApp
from repro.obs import get_telemetry
from repro.sim.metrics import PeriodStats

__all__ = ["HybridConfig", "HybridPlant"]

logger = logging.getLogger(__name__)

#: Fallback moment ratios (p90/mean, p50/mean, max/mean) used only if a
#: synthesized period is requested before any exact period produced
#: enough samples — the exponential-sojourn values, ln10 / ln2, with an
#: arbitrary-but-finite tail for the max.
_DEFAULT_RATIOS = (math.log(10.0), math.log(2.0), 2.0 * math.log(10.0))


@dataclass(frozen=True)
class HybridConfig:
    """Switching-policy knobs for :class:`HybridPlant`.

    Attributes
    ----------
    alloc_tolerance:
        Maximum per-tier relative allocation change treated as
        quasi-static.  Larger changes are transients and force an exact
        period.
    settle_periods:
        Consecutive quasi-static exact periods required after a
        transient before MVA fast-forwarding engages.
    min_reconcile_samples:
        Minimum completions in an exact period for its latency moment
        ratios to be adopted for later synthesized periods.
    max_population_exact_mva:
        Use the exact O(N·M) MVA recursion up to this client count;
        beyond it, Schweitzer's O(M)-per-iteration approximation.
    """

    alloc_tolerance: float = 0.10
    settle_periods: int = 2
    min_reconcile_samples: int = 20
    max_population_exact_mva: int = 2048

    def __post_init__(self):
        if self.alloc_tolerance < 0:
            raise ValueError(
                f"alloc_tolerance must be >= 0, got {self.alloc_tolerance}"
            )
        if self.settle_periods < 1:
            raise ValueError(
                f"settle_periods must be >= 1, got {self.settle_periods}"
            )
        if self.min_reconcile_samples < 1:
            raise ValueError(
                f"min_reconcile_samples must be >= 1, got {self.min_reconcile_samples}"
            )
        if self.max_population_exact_mva < 0:
            raise ValueError(
                "max_population_exact_mva must be >= 0, "
                f"got {self.max_population_exact_mva}"
            )


class HybridPlant:
    """DES plant with analytic fast-forward through quasi-static periods.

    Drop-in replacement for :class:`~repro.apps.rubbos.MultiTierApp` on
    the control surface the testbed backend and
    :class:`~repro.core.manager.PowerManager` use (``set_allocations``,
    ``set_concurrency``, ``degrade_tier``, ``run_period``, ``used_ghz``,
    ``warmup``, …).  Attributes it does not intercept delegate to the
    wrapped app.
    """

    def __init__(self, app: MultiTierApp, config: Optional[HybridConfig] = None):
        self.app = app
        self.hybrid_config = config or HybridConfig()
        # MVA models unbounded PS stations; an admission cap changes the
        # stationary law, so capped apps never fast-forward.
        self._mva_capable = all(
            t.max_concurrency is None for t in app.spec.tiers
        )
        self._pending_transient: Optional[str] = "startup"
        self._quasi_static_streak = 0
        self._ratios: Optional[Tuple[float, float, float]] = None
        self._completed_carry = 0.0
        self._period_index = 0
        self._last_mode: Optional[str] = None
        self._mva_used: Optional[np.ndarray] = None
        #: ``(period_index, mode, reason)`` per period, for tests and
        #: post-run inspection.
        self.mode_log: List[Tuple[int, str, str]] = []
        self.mva_periods = 0
        self.exact_periods = 0
        self.switches = 0

    # -- control surface (intercepted) ---------------------------------

    def set_allocations(self, allocations_ghz) -> None:
        """Forward to the app; flag a transient on a large change.

        The comparison uses the *clipped* target (what the app will
        actually apply) so a grant outside the tier bounds is not
        mistaken for a step.
        """
        target = np.asarray(allocations_ghz, dtype=float)
        current = self.app.allocations_ghz
        if target.shape == current.shape:
            lo = np.asarray([t.min_alloc_ghz for t in self.app.spec.tiers])
            hi = np.asarray([t.max_alloc_ghz for t in self.app.spec.tiers])
            clipped = np.clip(target, lo, hi)
            rel = np.abs(clipped - current) / np.maximum(current, 1e-9)
            if float(rel.max()) > self.hybrid_config.alloc_tolerance:
                self._flag_transient("alloc_step")
        self.app.set_allocations(allocations_ghz)

    def set_concurrency(self, n: int) -> None:
        """Forward to the app; any level change is a transient."""
        if int(n) != self.app.concurrency:
            self._flag_transient("concurrency_step")
        self.app.set_concurrency(n)

    def degrade_tier(self, tier_index: int, fraction: float) -> None:
        """Forward to the app; any degradation change is a fault transient.

        Also reachable mid-period through the plant's own DES (scheduled
        fault recoveries), in which case the flag applies from the next
        period on — exactly when the statistics could diverge.
        """
        if self.app.tier_degrade_fraction(tier_index) != float(fraction):
            self._flag_transient("fault")
        self.app.degrade_tier(tier_index, fraction)

    def warmup(self, duration_s: float) -> None:
        """Warmup always runs the exact DES (it *is* the transient)."""
        self.app.warmup(duration_s)

    def run_period(self, duration_s: float) -> PeriodStats:
        """One control period: exact DES or MVA fast-forward."""
        reason = self._pending_transient
        self._pending_transient = None
        if not self._mva_capable:
            reason = reason or "admission_gate"
        elif reason is None and any(
            self.app.tier_degrade_fraction(j) != 1.0
            for j in range(self.app.spec.n_tiers)
        ):
            reason = "degraded"
        if reason is not None:
            self._quasi_static_streak = 0
            return self._run_exact(duration_s, reason)
        if self._quasi_static_streak < self.hybrid_config.settle_periods:
            return self._run_exact(duration_s, "settling")
        return self._run_mva(duration_s)

    def used_ghz(self, duration_s: float) -> np.ndarray:
        """Per-tier average GHz over the last period, either mode."""
        if self._last_mode == "mva" and self._mva_used is not None:
            return self._mva_used.copy()
        return self.app.used_ghz(duration_s)

    # -- results -------------------------------------------------------

    def summary(self) -> dict:
        """Per-run switching summary (``TestbedResult.hybrid``)."""
        return {
            "mva_periods": self.mva_periods,
            "exact_periods": self.exact_periods,
            "switches": self.switches,
            "final_mode": self._last_mode,
            "mode_log": [list(entry) for entry in self.mode_log],
        }

    # -- internals -----------------------------------------------------

    def _flag_transient(self, reason: str) -> None:
        if self._pending_transient is None:
            self._pending_transient = reason

    def _log_mode(self, mode: str, reason: str) -> None:
        self.mode_log.append((self._period_index, mode, reason))
        self._period_index += 1
        if mode != self._last_mode:
            if self._last_mode is not None:
                self.switches += 1
            tel = get_telemetry()
            if tel.enabled:
                tel.event(
                    "hybrid_switch",
                    app=self.app.spec.name,
                    period=self._period_index - 1,
                    mode=mode,
                    reason=reason,
                )
            self._last_mode = mode

    def _run_exact(self, duration_s: float, reason: str) -> PeriodStats:
        self._log_mode("exact", reason)
        stats = self.app.run_period(duration_s)
        self.exact_periods += 1
        get_telemetry().count("hybrid.exact_periods", 1)
        # A fault or workload step that fired *during* the period (via
        # the plant's own DES) re-flags; only genuinely quiet periods
        # extend the quasi-static streak.
        if self._pending_transient is None:
            self._quasi_static_streak += 1
        if (
            stats.completed >= self.hybrid_config.min_reconcile_samples
            and math.isfinite(stats.rt_mean_ms)
            and stats.rt_mean_ms > 0
        ):
            self._ratios = (
                stats.rt_p90_ms / stats.rt_mean_ms,
                stats.rt_p50_ms / stats.rt_mean_ms,
                stats.rt_max_ms / stats.rt_mean_ms,
            )
        return stats

    def _run_mva(self, duration_s: float) -> PeriodStats:
        self._log_mode("mva", "quasi_static")
        self.mva_periods += 1
        get_telemetry().count("hybrid.mva_periods", 1)
        get_telemetry().count("hybrid.fast_forward_s", duration_s)
        spec = self.app.spec
        alloc = self.app.allocations_ghz
        n_clients = self.app.concurrency
        n_tiers = spec.n_tiers
        if n_clients == 0 or np.any(alloc <= 0):
            # Empty population (or a stalled tier): same shape an exact
            # empty period produces — no samples, NaN latency columns.
            self._mva_used = np.zeros(n_tiers)
            nan = float("nan")
            return PeriodStats(
                rt_p90_ms=nan,
                rt_mean_ms=nan,
                completed=0,
                throughput_rps=0.0,
                utilizations=tuple(0.0 for _ in range(n_tiers)),
                rt_p50_ms=nan,
                rt_max_ms=nan,
            )
        service = np.asarray(
            [t.demand.mean for t in spec.tiers], dtype=float
        ) / alloc
        solver = (
            mva_closed_network
            if n_clients <= self.hybrid_config.max_population_exact_mva
            else approx_mva_closed_network
        )
        res = solver(service, n_clients, spec.think_time_s)
        mean_ms = res.response_time_s * 1000.0
        raw = res.throughput_rps * duration_s + self._completed_carry
        completed = int(math.floor(raw))
        self._completed_carry = raw - completed
        # used GHz per tier = throughput × mean demand = utilization × alloc.
        self._mva_used = res.throughput_rps * np.asarray(
            [t.demand.mean for t in spec.tiers], dtype=float
        )
        r90, r50, rmax = self._ratios or _DEFAULT_RATIOS
        return PeriodStats(
            rt_p90_ms=mean_ms * r90,
            rt_mean_ms=mean_ms,
            completed=completed,
            throughput_rps=res.throughput_rps,
            utilizations=tuple(
                float(u) for u in np.clip(res.station_utilization, 0.0, 1.0)
            ),
            rt_p50_ms=mean_ms * r50,
            rt_max_ms=mean_ms * rmax,
        )

    # -- delegation ----------------------------------------------------

    def __getattr__(self, name: str) -> Any:
        # Anything not intercepted (spec, sim, concurrency,
        # allocations_ghz, tier_degrade_fraction, drain_traces, ...)
        # behaves exactly as on the wrapped app.
        return getattr(self.app, name)
