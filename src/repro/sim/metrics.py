"""Metrics containers shared by the testbed and large-scale simulations."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np


@dataclass(frozen=True)
class PeriodStats:
    """Measurements from one control period of one application.

    Attributes
    ----------
    rt_p90_ms:
        Empirical 90-percentile response time over the period (ms).
        ``nan`` when no request completed.
    rt_mean_ms:
        Mean response time over the period (ms); ``nan`` when empty.
    completed:
        Number of requests that completed during the period.
    throughput_rps:
        Completions per second.
    utilizations:
        Per-tier busy fraction of the *allocated* capacity in [0, 1].
    rt_p50_ms / rt_max_ms:
        Median and maximum response times — the alternative SLA metrics
        the paper's §III mentions ("average or maximum response times").
    """

    rt_p90_ms: float
    rt_mean_ms: float
    completed: int
    throughput_rps: float
    utilizations: tuple
    rt_p50_ms: float = float("nan")
    rt_max_ms: float = float("nan")

    def metric(self, name: str) -> float:
        """Look up an SLA metric by short name: p90, p50, mean, or max."""
        try:
            return {
                "p90": self.rt_p90_ms,
                "p50": self.rt_p50_ms,
                "mean": self.rt_mean_ms,
                "max": self.rt_max_ms,
            }[name]
        except KeyError:
            raise ValueError(
                f"unknown SLA metric {name!r}; pick p90, p50, mean, or max"
            ) from None


class SeriesRecorder:
    """Append-only named time series with NumPy export.

    One recorder per experiment run; benches read the arrays back to
    print the figure series.

    By default every sample is kept.  For long (multi-day simulated)
    runs pass ``max_points`` to bound memory: once a series reaches the
    cap it is decimated — every second retained sample is dropped and
    the sampling stride doubles, so the series stays evenly spaced over
    the whole run and never exceeds ``max_points`` entries.
    """

    def __init__(self, max_points: int | None = None) -> None:
        if max_points is not None and max_points < 2:
            raise ValueError(f"max_points must be >= 2, got {max_points}")
        self.max_points = max_points
        self._series: Dict[str, List[float]] = {}
        self._times: Dict[str, List[float]] = {}
        self._strides: Dict[str, int] = {}
        self._seen: Dict[str, int] = {}

    def record(self, name: str, time_s: float, value: float) -> None:
        """Append ``(time_s, value)`` to series *name*."""
        if self.max_points is None:
            self._series.setdefault(name, []).append(float(value))
            self._times.setdefault(name, []).append(float(time_s))
            return
        seen = self._seen.get(name, 0)
        stride = self._strides.setdefault(name, 1)
        self._seen[name] = seen + 1
        if seen % stride != 0:
            return
        vals = self._series.setdefault(name, [])
        times = self._times.setdefault(name, [])
        vals.append(float(value))
        times.append(float(time_s))
        if len(vals) >= self.max_points:
            self._series[name] = vals[::2]
            self._times[name] = times[::2]
            self._strides[name] = stride * 2

    def count(self, name: str) -> int:
        """Total samples *offered* to series *name* (before decimation)."""
        if self.max_points is None:
            return len(self._series.get(name, []))
        return self._seen.get(name, 0)

    def clear(self) -> None:
        """Drop all recorded series and reset decimation state."""
        self._series.clear()
        self._times.clear()
        self._strides.clear()
        self._seen.clear()

    def names(self) -> Sequence[str]:
        """Names of all recorded series, insertion-ordered."""
        return list(self._series.keys())

    def values(self, name: str) -> np.ndarray:
        """Values of series *name* as a float array."""
        return np.asarray(self._series.get(name, []), dtype=float)

    def times(self, name: str) -> np.ndarray:
        """Timestamps of series *name* as a float array."""
        return np.asarray(self._times.get(name, []), dtype=float)

    def last(self, name: str, default: float = float("nan")) -> float:
        """Most recent value of series *name* (or *default*)."""
        vals = self._series.get(name)
        return vals[-1] if vals else default

    def summary(self, name: str) -> dict:
        """Mean / std / min / max summary of a series (NaNs ignored)."""
        vals = self.values(name)
        finite = vals[np.isfinite(vals)]
        if finite.size == 0:
            return {"mean": np.nan, "std": np.nan, "min": np.nan, "max": np.nan, "n": 0}
        return {
            "mean": float(finite.mean()),
            "std": float(finite.std(ddof=0)),
            "min": float(finite.min()),
            "max": float(finite.max()),
            "n": int(finite.size),
        }


@dataclass
class EnergyMeter:
    """Integrates power (W) samples over time into energy (Wh)."""

    energy_wh: float = 0.0
    _samples: List[float] = field(default_factory=list)

    def add_interval(self, power_w: float, duration_s: float) -> None:
        """Accumulate ``power_w`` held for ``duration_s`` seconds."""
        if duration_s < 0:
            raise ValueError(f"duration must be >= 0, got {duration_s}")
        if power_w < 0:
            raise ValueError(f"power must be >= 0, got {power_w}")
        self.energy_wh += power_w * duration_s / 3600.0
        self._samples.append(float(power_w))

    @property
    def mean_power_w(self) -> float:
        """Mean of the recorded power samples (W); NaN when empty."""
        if not self._samples:
            return float("nan")
        return float(np.mean(self._samples))
