"""Simulation engines: event kernel, testbed-scale and large-scale runs."""

from repro.sim.des import Simulator, EventHandle, SimEvent, PSResource, FCFSResource
from repro.sim.metrics import PeriodStats, SeriesRecorder

__all__ = [
    "Simulator",
    "EventHandle",
    "SimEvent",
    "PSResource",
    "FCFSResource",
    "PeriodStats",
    "SeriesRecorder",
]
