"""Simulated reproduction of the paper's 4-server hardware testbed (§VI-A).

Eight two-tier RUBBoS-like applications (16 VMs) run on four identical
Xen-class servers, four VMs per server.  Each application has a
response-time MPC controller; each server has a CPU arbitrator with
DVFS.  Figures 2-5 of the paper are produced by driving this testbed
with different workloads and set points.

The flow per control period:

1. every application's plant simulates one period under its current
   allocations and reports the measured 90-percentile response time;
2. the :class:`~repro.core.manager.PowerManager` runs the controllers
   (new demands), the arbitrators (DVFS + grants), and pushes the
   granted allocations back into the plants;
3. cluster power is computed from each server's chosen frequency and the
   CPU its VMs actually consumed.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from repro.apps.rubbos import AppSpec, MultiTierApp
from repro.apps.workload import ConcurrencySchedule, ConstantWorkload
from repro.cluster.application import Application
from repro.cluster.catalog import TESTBED_SERVER
from repro.cluster.datacenter import DataCenter
from repro.cluster.server import Server
from repro.cluster.vm import VM
from repro.control.arx import ARXModel
from repro.core.controller.response_time_controller import (
    ControllerConfig,
    ResponseTimeController,
)
from repro.core.manager import PowerManager, PowerManagerConfig
from repro.faults import FaultSchedule
from repro.sim.hybrid import HybridConfig, HybridPlant
from repro.sim.metrics import SeriesRecorder
from repro.sysid.experiment import run_identification_experiment
from repro.sysid.fit import fit_arx
from repro.util.rng import RngLike, ensure_rng, spawn_rngs
from repro.util.validation import check_positive

__all__ = ["TestbedConfig", "TestbedResult", "TestbedExperiment"]

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class TestbedConfig:
    """Configuration of one testbed experiment run.

    (``__test__`` is cleared because pytest would otherwise try to
    collect the Test*-prefixed name.)

    ``workloads`` / ``setpoints_ms`` override individual applications
    (key = app index 0..n_apps-1); unspecified apps get the defaults.
    ``controlled=False`` disables the response-time controllers (static
    allocations), the uncontrolled baseline of Fig. 3.

    ``optimize_at_s`` lists simulated times at which the data-center
    power optimizer (IPAC) is invoked on the testbed — the paper's
    integrated two-level solution: VMs consolidate onto fewer servers,
    the rest sleep, and the response-time controllers keep tracking
    throughout.

    ``faults`` attaches a deterministic fault schedule (see
    :mod:`repro.faults`): servers crash and recover mid-run, capacity
    throttles, migrations fail, response-time sensors drop out.  When
    set, controllers use the ``"hold"`` missing-measurement policy and
    a VM re-placed after a crash serves nothing for
    ``fault_downtime_s`` (restart time).  ``None`` (default) leaves the
    run byte-identical to a fault-free build.

    ``trace_requests_every=N`` (N >= 1) traces every Nth client request
    through its tiers and emits ``request_trace`` telemetry events; 0
    (default) disables tracing.  ``attribute_power=True`` joins per-tier
    CPU usage against per-server power each period and accumulates
    PowerTracer-style per-app/per-tier energy (``power_attribution`` /
    ``attribution_summary`` events + ``TestbedResult.attribution``).
    Both are counter-based and read-only: enabling them never changes
    control decisions or the simulated trajectory.

    ``plant_mode`` selects the request-level plant: ``"des"`` (default)
    simulates every request; ``"hybrid"`` wraps each plant in a
    :class:`repro.sim.hybrid.HybridPlant` that fast-forwards
    quasi-static control periods through the analytic MVA fixed point
    and falls back to the exact DES around transients (``hybrid`` tunes
    the switching policy; a plain dict is coerced).  ``des_kernel``
    selects the event-kernel implementation — ``"fast"`` (default,
    optimized) or ``"reference"`` (the preserved original; bit-identical,
    used for equivalence tests and benchmark baselines).

    ``control_mode`` selects the application-level control path in the
    :class:`~repro.core.manager.PowerManager`: ``"fleet"`` (default)
    batches all apps' sysid/MPC through the grouped kernels each
    period; ``"scalar"`` runs the historical per-app loop.  The paths
    are allclose-equivalent, not bit-identical (stacked multi-RHS
    LAPACK) — runs pinned to golden event-log hashes use ``"scalar"``.
    """

    __test__ = False

    n_servers: int = 4
    n_apps: int = 8
    setpoint_ms: float = 1000.0
    concurrency: int = 40
    control_period_s: float = 15.0
    duration_s: float = 600.0
    warmup_s: float = 90.0
    controlled: bool = True
    initial_alloc_ghz: float = 1.0
    min_alloc_ghz: float = 0.2
    max_alloc_ghz: float = 3.0
    sla_metric: str = "p90"
    demand_scale_range: tuple = (1.0, 1.0)
    sysid_periods: int = 200
    sysid_alloc_range: tuple = (0.45, 0.9)
    workloads: Dict[int, ConcurrencySchedule] = field(default_factory=dict)
    setpoints_ms: Dict[int, float] = field(default_factory=dict)
    optimize_at_s: tuple = ()
    faults: Optional[FaultSchedule] = None
    fault_downtime_s: float = 30.0
    mpc_warm_start: bool = True
    trace_requests_every: int = 0
    attribute_power: bool = False
    plant_mode: str = "des"
    des_kernel: str = "fast"
    hybrid: Optional[HybridConfig] = None
    control_mode: str = "fleet"
    seed: int = 2010

    def __post_init__(self):
        if self.control_mode not in ("fleet", "scalar"):
            raise ValueError(
                f"control_mode must be 'fleet' or 'scalar', "
                f"got {self.control_mode!r}"
            )
        if self.plant_mode not in ("des", "hybrid"):
            raise ValueError(
                f"plant_mode must be 'des' or 'hybrid', got {self.plant_mode!r}"
            )
        if self.des_kernel not in ("fast", "reference"):
            raise ValueError(
                f"des_kernel must be 'fast' or 'reference', got {self.des_kernel!r}"
            )
        if isinstance(self.hybrid, dict):
            # Scenario specs carry the switching policy as plain JSON.
            object.__setattr__(self, "hybrid", HybridConfig(**self.hybrid))
        if self.n_servers < 1 or self.n_apps < 1:
            raise ValueError("need at least one server and one application")
        check_positive("duration_s", self.duration_s)
        check_positive("control_period_s", self.control_period_s)
        if 2 * self.n_apps < self.n_servers:
            raise ValueError("not enough VMs to occupy every server")
        if self.sla_metric not in ("p90", "p50", "mean", "max"):
            raise ValueError(
                f"sla_metric must be p90/p50/mean/max, got {self.sla_metric!r}"
            )
        lo, hi = self.demand_scale_range
        if not 0 < lo <= hi:
            raise ValueError(
                f"demand_scale_range must satisfy 0 < lo <= hi, got {self.demand_scale_range}"
            )
        check_positive("fault_downtime_s", self.fault_downtime_s)
        if self.trace_requests_every < 0:
            raise ValueError(
                f"trace_requests_every must be >= 0 (0 = off), "
                f"got {self.trace_requests_every}"
            )


@dataclass
class TestbedResult:
    """Recorded series plus per-app summaries from one run.

    Series names: ``rt/app{i}`` (ms), ``alloc/app{i}/tier{j}`` (GHz),
    ``power/total`` (W), ``freq/{server}`` (GHz).
    """

    __test__ = False

    recorder: SeriesRecorder
    model: ARXModel
    sysid_r2: float
    #: Cumulative per-app/per-tier energy attribution (see
    #: :class:`repro.obs.attribution.EnergyAttributor`); ``None`` unless
    #: the run had ``attribute_power=True``.
    attribution: Optional[dict] = None
    #: Per-app hybrid fast-forward summaries (mode switches, MVA vs
    #: exact period counts — see :meth:`repro.sim.hybrid.HybridPlant.summary`);
    #: ``None`` unless the run had ``plant_mode="hybrid"``.
    hybrid: Optional[Dict[str, dict]] = None

    def rt_summary(self, app_index: int) -> dict:
        """Mean/std/min/max of an app's measured response times."""
        return self.recorder.summary(f"rt/app{app_index}")

    def power_summary(self) -> dict:
        """Mean/std/min/max of total cluster power."""
        return self.recorder.summary("power/total")


class TestbedExperiment:
    """Builds and runs the simulated testbed."""

    __test__ = False  # not a pytest test class despite the Test* name

    def __init__(self, config: TestbedConfig | None = None, model: Optional[ARXModel] = None):
        self.config = config or TestbedConfig()
        self._shared_model = model
        self._sysid_r2 = float("nan")

    # -- construction -------------------------------------------------

    def identify_model(self, rng: RngLike = None) -> ARXModel:
        """Run the paper's system-identification step on a standalone
        instance of the application (§IV-B) and cache the ARX model.

        All eight controllers share this single identified model; Figs. 4
        and 5 then demonstrate robustness to operating conditions the
        identification never saw.
        """
        if self._shared_model is not None:
            return self._shared_model
        cfg = self.config
        rng = ensure_rng(rng if rng is not None else cfg.seed + 999)
        app = MultiTierApp(
            AppSpec.rubbos(max_alloc_ghz=cfg.max_alloc_ghz),
            [cfg.initial_alloc_ghz] * 2,
            concurrency=cfg.concurrency,
            rng=rng,
            kernel=cfg.des_kernel,
        )
        lo, hi = cfg.sysid_alloc_range
        data = run_identification_experiment(
            app,
            n_periods=cfg.sysid_periods,
            period_s=cfg.control_period_s,
            alloc_lower=[lo] * 2,
            alloc_upper=[hi] * 2,
            rng=rng,
            metric=cfg.sla_metric,
        )
        fit = fit_arx(data.t, data.c, na=1, nb=2)
        self._shared_model = fit.model
        self._sysid_r2 = fit.r_squared
        return fit.model

    def build(self, rng: RngLike = None):
        """Instantiate data center, plants, manager, and controllers."""
        cfg = self.config
        master = ensure_rng(rng if rng is not None else cfg.seed)
        app_rngs = spawn_rngs(master, cfg.n_apps)
        model = self.identify_model()

        dc = DataCenter()
        for s in range(cfg.n_servers):
            dc.add_server(Server(f"T{s}", TESTBED_SERVER, active=True))
        manager = PowerManager(
            dc,
            PowerManagerConfig(control_period_s=cfg.control_period_s),
            control_mode=cfg.control_mode,
        )
        # MultiTierApp, or HybridPlant wrapping one in hybrid mode —
        # both expose the same control surface.
        plants: List = []
        scale_lo, scale_hi = cfg.demand_scale_range
        for i in range(cfg.n_apps):
            # Optional heterogeneity: each app's per-request CPU demands
            # are scaled by a per-app factor (real tenants differ; the
            # shared identified model must still control all of them).
            scale = float(app_rngs[i].uniform(scale_lo, scale_hi))
            spec = AppSpec.rubbos(
                name=f"app{i}",
                web_demand_ghz_s=0.020 * scale,
                db_demand_ghz_s=0.015 * scale,
                max_alloc_ghz=cfg.max_alloc_ghz,
            )
            spec = replace(
                spec,
                tiers=tuple(
                    replace(t, min_alloc_ghz=cfg.min_alloc_ghz) for t in spec.tiers
                ),
            )
            workload = cfg.workloads.get(i, ConstantWorkload(cfg.concurrency))
            plant = MultiTierApp(
                spec,
                [cfg.initial_alloc_ghz] * 2,
                concurrency=workload.level(0.0),
                rng=app_rngs[i],
                kernel=cfg.des_kernel,
            )
            if cfg.plant_mode == "hybrid":
                plant = HybridPlant(plant, cfg.hybrid)
            plants.append(plant)
            vm_ids = [f"app{i}-web", f"app{i}-db"]
            for j, vm_id in enumerate(vm_ids):
                dc.add_vm(
                    VM(vm_id, app_id=f"app{i}", tier_index=j, memory_mb=1024,
                       demand_ghz=cfg.initial_alloc_ghz)
                )
                # Tiers spread round-robin: four VMs per server.
                dc.place(vm_id, f"T{(2 * i + j) % cfg.n_servers}")
            setpoint = cfg.setpoints_ms.get(i, cfg.setpoint_ms)
            dc.add_application(
                Application(f"app{i}", vm_ids, plant=plant, rt_setpoint_ms=setpoint)
            )
            if cfg.controlled:
                cc = ControllerConfig(
                    setpoint_ms=setpoint,
                    period_s=cfg.control_period_s,
                    # Under fault injection a NaN sample means the
                    # sensor dropped out, not starvation: hold.
                    missing_policy="hold" if cfg.faults else "pessimistic",
                )
                if not cfg.mpc_warm_start:
                    cc = replace(cc, mpc=replace(cc.mpc, warm_start=False))
                controller = ResponseTimeController(
                    model,
                    cc,
                    c_min=[cfg.min_alloc_ghz] * 2,
                    c_max=[cfg.max_alloc_ghz] * 2,
                    initial_alloc_ghz=[cfg.initial_alloc_ghz] * 2,
                )
                manager.register_controller(f"app{i}", controller)
        return dc, manager, plants

    # -- execution ------------------------------------------------------

    def _sync_plant_faults(
        self,
        dc: DataCenter,
        plants: List[MultiTierApp],
        evacuated_vms: set,
    ) -> None:
        """Propagate cluster fault state into the request-level plants.

        Called right after the injector's transitions for a period: a
        tier whose VM is homeless serves nothing; a VM just re-placed by
        an emergency evacuation restarts (zero capacity for
        ``fault_downtime_s``, scheduled inside the plant's own DES); a
        tier on a throttled host runs at the host's capacity fraction.
        """
        cfg = self.config
        for i, plant in enumerate(plants):
            app = dc.applications[f"app{i}"]
            for j, vm_id in enumerate(app.vm_ids):
                sid = dc.server_of(vm_id)
                if sid is None:
                    plant.degrade_tier(j, 0.0)
                    continue
                frac = dc.servers[sid].capacity_fraction
                if vm_id in evacuated_vms:
                    evacuated_vms.discard(vm_id)
                    plant.degrade_tier(j, 0.0)
                    downtime = min(cfg.fault_downtime_s, cfg.control_period_s)
                    plant.sim.schedule(downtime, plant.degrade_tier, j, frac)
                elif plant.tier_degrade_fraction(j) != frac:
                    plant.degrade_tier(j, frac)

    def run(self, rng: RngLike = None) -> TestbedResult:
        """Run the experiment and return the recorded series.

        This is a thin configuration of the control-plane kernel: it
        builds a :class:`repro.engine.testbed_backend.TestbedBackend`
        around this experiment, runs the
        :class:`repro.engine.ControlPlane` to completion, and returns
        the backend's recorded series.  Use
        :func:`repro.engine.build_testbed_engine` directly for stepwise
        execution or checkpoint/resume.
        """
        from repro.engine.testbed_backend import build_testbed_engine

        engine, backend = build_testbed_engine(experiment=self, rng=rng)
        backend.start()
        engine.run()
        return backend.result()
