"""Plain-text reports for experiment results.

Turns the result objects of both harnesses into the aligned tables and
ASCII sketches the CLI and benchmark suite print — one rendering path so
every surface shows the same numbers the same way.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.sim.largescale import LargeScaleResult
from repro.sim.testbed import TestbedResult
from repro.util.ascii_chart import ascii_series
from repro.util.tables import format_table

__all__ = ["testbed_report", "largescale_report", "comparison_report"]


def testbed_report(result: TestbedResult, n_apps: int, setpoint_ms: float) -> str:
    """Render one testbed run: per-app tracking plus power summary."""
    rows = []
    for i in range(n_apps):
        s = result.rt_summary(i)
        rows.append([
            f"app{i}", s["mean"], s["std"],
            f"{100.0 * abs(s['mean'] - setpoint_ms) / setpoint_ms:.1f}%",
        ])
    parts = [
        format_table(
            ["app", "rt mean (ms)", "std (ms)", "set-point error"],
            rows,
            title=f"Response-time tracking (set point {setpoint_ms:.0f} ms, "
            f"sysid R^2 = {result.sysid_r2:.2f})",
        )
    ]
    p = result.power_summary()
    parts.append(
        f"\nCluster power: mean {p['mean']:.1f} W, std {p['std']:.1f}, "
        f"range [{p['min']:.1f}, {p['max']:.1f}] W over {p['n']} periods"
    )
    power = result.recorder.values("power/total")
    if power.size > 4:
        parts.append(ascii_series(power, label="\ncluster power (W)"))
    return "\n".join(parts)


def largescale_report(result: LargeScaleResult) -> str:
    """Render one large-scale run: energy, placement and SLA pressure."""
    duration_days = result.n_steps * result.step_s / 86400.0
    rows = [
        ["scheme", result.scheme],
        ["VMs", result.n_vms],
        ["trace length", f"{duration_days:.1f} days ({result.n_steps} steps)"],
        ["total energy (kWh)", result.total_energy_wh / 1000.0],
        ["energy per VM (Wh)", result.energy_per_vm_wh],
        ["migrations", result.migrations],
        ["mean / max active servers",
         f"{result.mean_active_servers:.1f} / {result.max_active_servers}"],
        ["overloaded server-steps", result.overload_server_steps],
        ["unplaced VM-steps", result.unplaced_vm_steps],
        ["DVFS", "on" if result.info.get("dvfs") else "off"],
    ]
    parts = [format_table(["metric", "value"], rows, title="Large-scale run")]
    if result.power_series_w.size > 4:
        parts.append(ascii_series(result.power_series_w, label="\ntotal power (W)"))
    return "\n".join(parts)


def comparison_report(results: Sequence[LargeScaleResult], baseline_index: int = -1) -> str:
    """Side-by-side scheme comparison with savings vs a baseline row."""
    if not results:
        raise ValueError("need at least one result")
    baseline = results[baseline_index]
    rows: List[list] = []
    for r in results:
        saving = 1.0 - r.energy_per_vm_wh / baseline.energy_per_vm_wh
        rows.append([
            r.scheme,
            r.energy_per_vm_wh,
            f"{100.0 * saving:+.1f}%",
            r.migrations,
            f"{r.mean_active_servers:.1f}",
            r.overload_server_steps,
        ])
    return format_table(
        ["scheme", "Wh/VM", f"vs {baseline.scheme}", "moves",
         "mean active", "overload steps"],
        rows,
        title=f"Scheme comparison ({results[0].n_vms} VMs)",
    )
