"""A small discrete-event simulation kernel.

This is the substrate under the request-level application simulator
(:mod:`repro.apps.rubbos`).  It provides:

* :class:`Simulator` — a monotonic clock plus a binary-heap event queue
  with cancellable handles and deterministic FIFO tie-breaking.
* :class:`SimEvent` — a one-shot event that processes can wait on.
* generator-based *processes* (``yield delay`` / ``yield SimEvent``),
  a miniature version of the SimPy model, for writing sequential logic
  such as closed-loop clients.
* :class:`PSResource` — an egalitarian processor-sharing queue whose
  service capacity (in GHz) can change at runtime; this models a VM's
  CPU under Xen-style credit caps.
* :class:`FCFSResource` — a single-server first-come-first-served queue,
  used for validation against M/M/1 theory.

Design notes
------------
The kernel is intentionally allocation-light: events are slotted objects
and the heap stores ``(time, seq, handle)`` tuples so ordering never
compares callbacks.  Cancelled events stay in the heap and are skipped on
pop (lazy deletion), which is O(1) per cancel.
"""

from __future__ import annotations

import heapq
import math
from typing import Callable, Dict, Generator, List, Optional, Tuple

from repro.obs import get_telemetry

__all__ = [
    "Simulator",
    "EventHandle",
    "SimEvent",
    "Process",
    "PSResource",
    "FCFSResource",
]


class EventHandle:
    """Cancellable reference to a scheduled callback."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable, args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so the kernel skips it; idempotent."""
        self.cancelled = True


class SimEvent:
    """A one-shot event that callbacks and processes can wait on.

    ``succeed(value)`` fires all registered callbacks exactly once; late
    subscribers fire immediately with the stored value.
    """

    __slots__ = ("sim", "_callbacks", "triggered", "value")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._callbacks: List[Callable] = []
        self.triggered = False
        self.value = None

    def on_success(self, fn: Callable) -> None:
        """Register ``fn(value)``; fires now if already triggered."""
        if self.triggered:
            fn(self.value)
        else:
            self._callbacks.append(fn)

    def succeed(self, value=None) -> None:
        """Trigger the event, delivering *value* to all waiters."""
        if self.triggered:
            raise RuntimeError("SimEvent already triggered")
        self.triggered = True
        self.value = value
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn(value)


class Process:
    """A generator-driven sequential activity.

    The generator may ``yield`` a non-negative float (sleep that many
    simulated seconds) or a :class:`SimEvent` (resume when it fires; the
    event's value is sent back into the generator).  ``finished`` is a
    :class:`SimEvent` that fires with the generator's return value.
    """

    __slots__ = ("sim", "gen", "finished", "_alive")

    def __init__(self, sim: "Simulator", gen: Generator):
        self.sim = sim
        self.gen = gen
        self.finished = SimEvent(sim)
        self._alive = True
        self._step(None)

    def _step(self, send_value) -> None:
        if not self._alive:
            return
        try:
            target = self.gen.send(send_value)
        except StopIteration as stop:
            self._alive = False
            self.finished.succeed(stop.value)
            return
        if isinstance(target, SimEvent):
            target.on_success(self._step)
        else:
            delay = float(target)
            if delay < 0 or not math.isfinite(delay):
                self._alive = False
                raise ValueError(f"process yielded invalid delay {target!r}")
            self.sim.schedule(delay, self._step, None)

    def interrupt(self) -> None:
        """Stop the process; its ``finished`` event never fires."""
        self._alive = False
        self.gen.close()


class Simulator:
    """Event queue + clock.  Times are floats in simulated seconds."""

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        self._seq = 0
        self._heap: List[Tuple[float, int, EventHandle]] = []

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def schedule(self, delay: float, fn: Callable, *args) -> EventHandle:
        """Run ``fn(*args)`` after *delay* seconds; returns a handle."""
        if delay < 0 or not math.isfinite(delay):
            raise ValueError(f"delay must be finite and >= 0, got {delay}")
        return self.schedule_at(self._now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable, *args) -> EventHandle:
        """Run ``fn(*args)`` at absolute simulated *time*."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule at {time} before current time {self._now}"
            )
        self._seq += 1
        handle = EventHandle(time, self._seq, fn, args)
        heapq.heappush(self._heap, (time, self._seq, handle))
        return handle

    def event(self) -> SimEvent:
        """Create a fresh :class:`SimEvent` bound to this simulator."""
        return SimEvent(self)

    def process(self, gen: Generator) -> Process:
        """Launch a generator as a :class:`Process` (starts immediately)."""
        return Process(self, gen)

    def timeout(self, delay: float) -> SimEvent:
        """An event that fires ``delay`` seconds from now."""
        ev = self.event()
        self.schedule(delay, ev.succeed, None)
        return ev

    def peek(self) -> float:
        """Time of the next pending event, or ``inf`` if none."""
        while self._heap and self._heap[0][2].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0][0] if self._heap else math.inf

    def step(self) -> bool:
        """Execute the next event.  Returns False if the queue is empty."""
        while self._heap:
            time, _seq, handle = heapq.heappop(self._heap)
            if handle.cancelled:
                continue
            self._now = time
            handle.fn(*handle.args)
            return True
        return False

    def run_until(self, until: float) -> None:
        """Process all events with time <= *until*, then set now=*until*.

        Advancing the clock to exactly *until* even when the last event is
        earlier makes fixed control periods line up across components.

        With telemetry enabled, each call is traced as one ``des.run_until``
        span annotated with the number of events it processed (the inner
        per-event loop stays uninstrumented, so disabled-mode overhead is
        one attribute check per call).
        """
        if until < self._now:
            raise ValueError(f"cannot run backwards to {until} from {self._now}")
        tel = get_telemetry()
        if not tel.enabled:
            while True:
                nxt = self.peek()
                if nxt > until:
                    break
                self.step()
            self._now = until
            return
        with tel.span("des.run_until", until=until) as sp:
            n_events = 0
            while True:
                nxt = self.peek()
                if nxt > until:
                    break
                self.step()
                n_events += 1
            self._now = until
            sp.annotate(events=n_events)
        tel.count("des.events", n_events)

    def run(self, until: Optional[float] = None) -> None:
        """Drain the event queue, optionally stopping at *until*."""
        if until is not None:
            self.run_until(until)
            return
        while self.step():
            pass


class _PSJob:
    __slots__ = ("job_id", "remaining", "done_event", "arrival_time")

    def __init__(self, job_id: int, remaining: float, done_event: SimEvent, arrival_time: float):
        self.job_id = job_id
        self.remaining = remaining  # remaining work in GHz-seconds (gigacycles)
        self.done_event = done_event
        self.arrival_time = arrival_time


class PSResource:
    """Egalitarian processor-sharing server with adjustable capacity.

    Work is denominated in **GHz-seconds** (billions of CPU cycles): a
    job of size ``w`` on an otherwise-idle resource with capacity ``c``
    GHz finishes after ``w / c`` seconds; with ``n`` jobs present each
    progresses at ``c / n`` GHz.  This is the standard fluid model of a
    CPU time-shared among request handlers, and capacity maps directly
    onto the paper's GHz-denominated VM allocations.

    The resource also integrates *busy time* and *work done*, which the
    cluster layer uses to compute utilization for DVFS and power models.
    """

    __slots__ = (
        "sim",
        "_capacity",
        "_nominal",
        "_degrade_fraction",
        "_jobs",
        "_next_id",
        "_completion",
        "_last_update",
        "busy_time",
        "work_done",
        "completed_jobs",
    )

    def __init__(self, sim: Simulator, capacity_ghz: float):
        if capacity_ghz < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity_ghz}")
        self.sim = sim
        self._capacity = float(capacity_ghz)
        self._nominal = float(capacity_ghz)
        self._degrade_fraction = 1.0
        self._jobs: Dict[int, _PSJob] = {}
        self._next_id = 0
        self._completion: Optional[EventHandle] = None
        self._last_update = sim.now
        self.busy_time = 0.0  # seconds with >=1 job present
        self.work_done = 0.0  # GHz-seconds actually processed
        self.completed_jobs = 0

    @property
    def capacity_ghz(self) -> float:
        """Current *effective* service capacity in GHz (after degradation)."""
        return self._capacity

    @property
    def nominal_capacity_ghz(self) -> float:
        """Allocated capacity in GHz, before any degradation."""
        return self._nominal

    @property
    def degrade_fraction(self) -> float:
        """Fraction of the nominal capacity currently delivered."""
        return self._degrade_fraction

    @property
    def queue_length(self) -> int:
        """Number of jobs currently in service."""
        return len(self._jobs)

    def set_capacity(self, capacity_ghz: float) -> None:
        """Change capacity; in-flight jobs keep their remaining work."""
        if capacity_ghz < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity_ghz}")
        self._advance()
        self._nominal = float(capacity_ghz)
        self._capacity = self._nominal * self._degrade_fraction
        self._reschedule()

    def degrade(self, fraction: float) -> None:
        """Deliver only *fraction* of the nominal capacity (fault injection:
        the host crashed or throttled under the VM).  0 stalls the queue
        entirely; in-flight jobs keep their remaining work and resume when
        :meth:`restore` (or a later allocation change) lifts the fraction."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        self._advance()
        self._degrade_fraction = float(fraction)
        self._capacity = self._nominal * self._degrade_fraction
        self._reschedule()

    def restore(self) -> None:
        """Lift any degradation: effective capacity returns to nominal."""
        self.degrade(1.0)

    def submit(self, work_ghz_seconds: float) -> SimEvent:
        """Add a job of the given size; returns its completion event."""
        if work_ghz_seconds <= 0 or not math.isfinite(work_ghz_seconds):
            raise ValueError(f"work must be finite and > 0, got {work_ghz_seconds}")
        self._advance()
        self._next_id += 1
        ev = self.sim.event()
        job = _PSJob(self._next_id, float(work_ghz_seconds), ev, self.sim.now)
        self._jobs[job.job_id] = job
        self._reschedule()
        return ev

    def reset_counters(self) -> None:
        """Zero the busy-time / work-done integrals (per-period stats)."""
        self._advance()
        self.busy_time = 0.0
        self.work_done = 0.0
        self.completed_jobs = 0

    # -- internal machinery ------------------------------------------------

    def _advance(self) -> None:
        """Account for processing between the last update and now."""
        now = self.sim.now
        dt = now - self._last_update
        self._last_update = now
        if dt <= 0 or not self._jobs:
            return
        n = len(self._jobs)
        rate = self._capacity / n
        self.busy_time += dt
        self.work_done += self._capacity * dt
        eps = 1e-12
        finished: List[_PSJob] = []
        for job in self._jobs.values():
            job.remaining -= rate * dt
            if job.remaining <= eps:
                finished.append(job)
        for job in finished:
            del self._jobs[job.job_id]
            self.completed_jobs += 1
            job.done_event.succeed(now - job.arrival_time)

    def _reschedule(self) -> None:
        """(Re)book the next completion event from current state."""
        if self._completion is not None:
            self._completion.cancel()
            self._completion = None
        if not self._jobs or self._capacity <= 0:
            return
        n = len(self._jobs)
        min_remaining = min(job.remaining for job in self._jobs.values())
        delay = max(min_remaining, 0.0) * n / self._capacity
        self._completion = self.sim.schedule(delay, self._on_completion)

    def _on_completion(self) -> None:
        self._completion = None
        self._advance()
        self._reschedule()


class _FCFSJob:
    __slots__ = ("work", "done_event", "arrival_time")

    def __init__(self, work: float, done_event: SimEvent, arrival_time: float):
        self.work = work
        self.done_event = done_event
        self.arrival_time = arrival_time


class FCFSResource:
    """Single-server first-come-first-served queue (work in GHz-seconds).

    A capacity change takes effect immediately, including for the job in
    service (its remaining work is served at the new rate).
    """

    __slots__ = (
        "sim",
        "_capacity",
        "_queue",
        "_current",
        "_current_remaining",
        "_completion",
        "_last_update",
        "busy_time",
        "work_done",
        "completed_jobs",
    )

    def __init__(self, sim: Simulator, capacity_ghz: float):
        if capacity_ghz < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity_ghz}")
        self.sim = sim
        self._capacity = float(capacity_ghz)
        self._queue: List[_FCFSJob] = []
        self._current: Optional[_FCFSJob] = None
        self._current_remaining = 0.0
        self._completion: Optional[EventHandle] = None
        self._last_update = sim.now
        self.busy_time = 0.0
        self.work_done = 0.0
        self.completed_jobs = 0

    @property
    def capacity_ghz(self) -> float:
        """Current service capacity in GHz."""
        return self._capacity

    @property
    def queue_length(self) -> int:
        """Jobs waiting plus the one in service."""
        return len(self._queue) + (1 if self._current is not None else 0)

    def set_capacity(self, capacity_ghz: float) -> None:
        """Change the service rate, affecting the in-service job too."""
        if capacity_ghz < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity_ghz}")
        self._advance()
        self._capacity = float(capacity_ghz)
        self._reschedule()

    def submit(self, work_ghz_seconds: float) -> SimEvent:
        """Enqueue a job; returns its completion event (value = sojourn)."""
        if work_ghz_seconds <= 0 or not math.isfinite(work_ghz_seconds):
            raise ValueError(f"work must be finite and > 0, got {work_ghz_seconds}")
        self._advance()
        ev = self.sim.event()
        job = _FCFSJob(float(work_ghz_seconds), ev, self.sim.now)
        self._queue.append(job)
        if self._current is None:
            self._start_next()
        return ev

    def _advance(self) -> None:
        now = self.sim.now
        dt = now - self._last_update
        self._last_update = now
        if dt <= 0 or self._current is None:
            return
        self.busy_time += dt
        processed = self._capacity * dt
        self.work_done += processed
        self._current_remaining -= processed

    def _start_next(self) -> None:
        if not self._queue:
            return
        self._current = self._queue.pop(0)
        self._current_remaining = self._current.work
        self._reschedule()

    def _reschedule(self) -> None:
        if self._completion is not None:
            self._completion.cancel()
            self._completion = None
        if self._current is None or self._capacity <= 0:
            return
        delay = max(self._current_remaining, 0.0) / self._capacity
        self._completion = self.sim.schedule(delay, self._on_completion)

    def _on_completion(self) -> None:
        self._completion = None
        self._advance()
        job = self._current
        self._current = None
        if job is not None:
            self.completed_jobs += 1
            job.done_event.succeed(self.sim.now - job.arrival_time)
        self._start_next()
