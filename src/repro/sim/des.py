"""A small discrete-event simulation kernel.

This is the substrate under the request-level application simulator
(:mod:`repro.apps.rubbos`).  It provides:

* :class:`Simulator` — a monotonic clock plus a binary-heap event queue
  with cancellable handles and deterministic FIFO tie-breaking.
* :class:`SimEvent` — a one-shot event that processes can wait on.
* generator-based *processes* (``yield delay`` / ``yield SimEvent``),
  a miniature version of the SimPy model, for writing sequential logic
  such as closed-loop clients.
* :class:`PSResource` — an egalitarian processor-sharing queue whose
  service capacity (in GHz) can change at runtime; this models a VM's
  CPU under Xen-style credit caps.
* :class:`FCFSResource` — a single-server first-come-first-served queue,
  used for validation against M/M/1 theory.

Design notes
------------
The kernel is intentionally allocation-light: events are slotted objects
and the heap stores ``(time, seq, handle)`` tuples so ordering never
compares callbacks.  Cancelled events are skipped on pop (lazy deletion,
O(1) per cancel); the simulator counts pending cancellations and
compacts the heap when stale entries dominate, so repeated
cancel/reschedule patterns (every ``PSResource`` completion) cannot grow
the heap without bound.

``run_until`` dispatches events in an inlined batched loop — one heap
operation and one comparison per event, with same-timestamp runs
dispatched back-to-back without touching the clock — instead of paying
two method calls (``peek`` + ``step``) per event.  ``PSResource`` keeps
remaining work in a preallocated float64 slot array and advances all
jobs with one vectorized subtract instead of a per-job object rescan.

Both optimizations are **bit-identical** to the original kernel, which
is preserved in :mod:`repro.sim.des_reference` and pinned by the
equivalence property tests in ``tests/test_des_equivalence.py``: events
fire in the same (time, seq) order, and every floating-point operation
on job state happens with the same operands in the same order (the
vectorized ``rem -= rate*dt`` performs exactly the per-element IEEE-754
subtraction the reference's loop did).
"""

from __future__ import annotations

import heapq
import math
from typing import Callable, Generator, List, Optional, Tuple

import numpy as np

from repro.obs import get_telemetry

__all__ = [
    "Simulator",
    "EventHandle",
    "SimEvent",
    "Process",
    "PSResource",
    "FCFSResource",
]


class EventHandle:
    """Cancellable reference to a scheduled callback."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "sim")

    def __init__(
        self,
        time: float,
        seq: int,
        fn: Callable,
        args: tuple,
        sim: Optional["Simulator"] = None,
    ):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.sim = sim

    def cancel(self) -> None:
        """Mark the event so the kernel skips it; idempotent.

        The owning simulator counts pending cancellations so it can
        compact its heap once stale entries dominate.  Cancelling a
        handle that already fired can only over-count (an extra, cheap
        compaction pass), never corrupt the queue.
        """
        if not self.cancelled:
            self.cancelled = True
            if self.sim is not None:
                self.sim._n_cancelled += 1


class SimEvent:
    """A one-shot event that callbacks and processes can wait on.

    ``succeed(value)`` fires all registered callbacks exactly once; late
    subscribers fire immediately with the stored value.
    """

    __slots__ = ("sim", "_callbacks", "triggered", "value")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._callbacks: List[Callable] = []
        self.triggered = False
        self.value = None

    def on_success(self, fn: Callable) -> None:
        """Register ``fn(value)``; fires now if already triggered."""
        if self.triggered:
            fn(self.value)
        else:
            self._callbacks.append(fn)

    def succeed(self, value=None) -> None:
        """Trigger the event, delivering *value* to all waiters."""
        if self.triggered:
            raise RuntimeError("SimEvent already triggered")
        self.triggered = True
        self.value = value
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn(value)


class Process:
    """A generator-driven sequential activity.

    The generator may ``yield`` a non-negative float (sleep that many
    simulated seconds) or a :class:`SimEvent` (resume when it fires; the
    event's value is sent back into the generator).  ``finished`` is a
    :class:`SimEvent` that fires with the generator's return value.
    """

    __slots__ = ("sim", "gen", "finished", "_alive")

    def __init__(self, sim: "Simulator", gen: Generator):
        self.sim = sim
        self.gen = gen
        self.finished = SimEvent(sim)
        self._alive = True
        self._step(None)

    def _step(self, send_value) -> None:
        if not self._alive:
            return
        try:
            target = self.gen.send(send_value)
        except StopIteration as stop:
            self._alive = False
            self.finished.succeed(stop.value)
            return
        if isinstance(target, SimEvent):
            target.on_success(self._step)
        else:
            delay = float(target)
            if delay < 0 or not math.isfinite(delay):
                self._alive = False
                raise ValueError(f"process yielded invalid delay {target!r}")
            self.sim.schedule(delay, self._step, None)

    def interrupt(self) -> None:
        """Stop the process; its ``finished`` event never fires."""
        self._alive = False
        self.gen.close()


class Simulator:
    """Event queue + clock.  Times are floats in simulated seconds."""

    #: Compaction is considered once more than this many cancelled
    #: entries are pending *and* they outnumber live entries.  Small
    #: enough that a cancel-heavy workload never carries a large stale
    #: tail, large enough that compaction cost is amortized over at
    #: least ``COMPACT_MIN`` O(log n) pushes.
    COMPACT_MIN = 64

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        self._seq = 0
        self._heap: List[Tuple[float, int, EventHandle]] = []
        self._n_cancelled = 0  # cancelled handles still sitting in the heap

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def heap_size(self) -> int:
        """Total heap entries, including cancelled ones awaiting removal."""
        return len(self._heap)

    @property
    def live_event_count(self) -> int:
        """Heap entries that are still scheduled to fire."""
        return len(self._heap) - self._n_cancelled

    def schedule(self, delay: float, fn: Callable, *args) -> EventHandle:
        """Run ``fn(*args)`` after *delay* seconds; returns a handle."""
        if delay < 0 or not math.isfinite(delay):
            raise ValueError(f"delay must be finite and >= 0, got {delay}")
        # Inlined schedule_at (delay >= 0 guarantees time >= now): this
        # is the hottest scheduling entry point.
        time = self._now + delay
        self._seq += 1
        handle = EventHandle(time, self._seq, fn, args, self)
        heapq.heappush(self._heap, (time, self._seq, handle))
        if self._n_cancelled > self.COMPACT_MIN:
            self._maybe_compact()
        return handle

    def schedule_at(self, time: float, fn: Callable, *args) -> EventHandle:
        """Run ``fn(*args)`` at absolute simulated *time*."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule at {time} before current time {self._now}"
            )
        self._seq += 1
        handle = EventHandle(time, self._seq, fn, args, self)
        heapq.heappush(self._heap, (time, self._seq, handle))
        if self._n_cancelled > self.COMPACT_MIN:
            self._maybe_compact()
        return handle

    def _maybe_compact(self) -> None:
        """Drop cancelled entries once they outnumber live ones.

        Rebuilds in place (slice assignment + heapify) so aliases of
        ``self._heap`` held by an in-flight ``run_until`` stay valid.
        Dispatch order is untouched: surviving entries keep their
        ``(time, seq)`` keys.
        """
        if self._n_cancelled * 2 <= len(self._heap):
            return
        self._heap[:] = [entry for entry in self._heap if not entry[2].cancelled]
        heapq.heapify(self._heap)
        self._n_cancelled = 0

    def event(self) -> SimEvent:
        """Create a fresh :class:`SimEvent` bound to this simulator."""
        return SimEvent(self)

    def process(self, gen: Generator) -> Process:
        """Launch a generator as a :class:`Process` (starts immediately)."""
        return Process(self, gen)

    def timeout(self, delay: float) -> SimEvent:
        """An event that fires ``delay`` seconds from now."""
        ev = self.event()
        self.schedule(delay, ev.succeed, None)
        return ev

    def peek(self) -> float:
        """Time of the next pending event, or ``inf`` if none."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
            self._n_cancelled -= 1
        return heap[0][0] if heap else math.inf

    def step(self) -> bool:
        """Execute the next event.  Returns False if the queue is empty."""
        heap = self._heap
        while heap:
            time, _seq, handle = heapq.heappop(heap)
            if handle.cancelled:
                self._n_cancelled -= 1
                continue
            self._now = time
            handle.fn(*handle.args)
            return True
        return False

    def run_until(self, until: float) -> None:
        """Process all events with time <= *until*, then set now=*until*.

        Advancing the clock to exactly *until* even when the last event is
        earlier makes fixed control periods line up across components.

        The dispatch loop is inlined (no per-event ``peek``/``step``
        method calls): one heappop and one boundary comparison per
        event, and a run of events sharing a timestamp is dispatched as
        a batch without re-touching the clock.  Order is exactly the
        reference kernel's (time, then schedule sequence).

        With telemetry enabled, each call is traced as one ``des.run_until``
        span annotated with the number of events it processed (the inner
        per-event loop stays uninstrumented, so disabled-mode overhead is
        one attribute check per call).
        """
        if until < self._now:
            raise ValueError(f"cannot run backwards to {until} from {self._now}")
        tel = get_telemetry()
        heap = self._heap
        pop = heapq.heappop
        if not tel.enabled:
            while heap and heap[0][0] <= until:
                time, _seq, handle = pop(heap)
                if handle.cancelled:
                    self._n_cancelled -= 1
                    continue
                self._now = time
                handle.fn(*handle.args)
                # Batch: drain the run of events at exactly this
                # timestamp (zero-delay cascades, simultaneous
                # completions) without re-checking the boundary.
                while heap and heap[0][0] == time:
                    _t, _s, handle = pop(heap)
                    if handle.cancelled:
                        self._n_cancelled -= 1
                    else:
                        handle.fn(*handle.args)
            self._now = until
            return
        with tel.span("des.run_until", until=until) as sp:
            n_events = 0
            while heap and heap[0][0] <= until:
                time, _seq, handle = pop(heap)
                if handle.cancelled:
                    self._n_cancelled -= 1
                    continue
                self._now = time
                handle.fn(*handle.args)
                n_events += 1
                while heap and heap[0][0] == time:
                    _t, _s, handle = pop(heap)
                    if handle.cancelled:
                        self._n_cancelled -= 1
                    else:
                        handle.fn(*handle.args)
                        n_events += 1
            self._now = until
            sp.annotate(events=n_events)
        tel.count("des.events", n_events)

    def run(self, until: Optional[float] = None) -> None:
        """Drain the event queue, optionally stopping at *until*."""
        if until is not None:
            self.run_until(until)
            return
        while self.step():
            pass


class PSResource:
    """Egalitarian processor-sharing server with adjustable capacity.

    Work is denominated in **GHz-seconds** (billions of CPU cycles): a
    job of size ``w`` on an otherwise-idle resource with capacity ``c``
    GHz finishes after ``w / c`` seconds; with ``n`` jobs present each
    progresses at ``c / n`` GHz.  This is the standard fluid model of a
    CPU time-shared among request handlers, and capacity maps directly
    onto the paper's GHz-denominated VM allocations.

    The resource also integrates *busy time* and *work done*, which the
    cluster layer uses to compute utilization for DVFS and power models.

    Job state lives in a preallocated float64 slot array (remaining
    work) plus parallel arrival/event lists, in arrival order — no
    per-job objects, no dict churn.  ``_advance`` applies the elapsed
    share to every job with one vectorized subtract; in the common case
    (nothing finished) it allocates nothing.  Results are bit-identical
    to the per-job reference implementation
    (:class:`repro.sim.des_reference.ReferencePSResource`): the
    subtraction, the ``1e-12`` completion threshold, the
    insertion-order completion sweep, and the min-remaining reschedule
    all perform the same IEEE-754 operations in the same order.
    """

    __slots__ = (
        "sim",
        "_capacity",
        "_nominal",
        "_degrade_fraction",
        "_rem",
        "_min_rem",
        "_events",
        "_arrivals",
        "_n",
        "_completion",
        "_last_update",
        "busy_time",
        "work_done",
        "completed_jobs",
    )

    _INITIAL_SLOTS = 16

    def __init__(self, sim: Simulator, capacity_ghz: float):
        if capacity_ghz < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity_ghz}")
        self.sim = sim
        self._capacity = float(capacity_ghz)
        self._nominal = float(capacity_ghz)
        self._degrade_fraction = 1.0
        self._rem = np.empty(self._INITIAL_SLOTS, dtype=np.float64)
        # Cached min of _rem[:_n] (inf when idle).  Subtracting the
        # common share decrement preserves element order under IEEE-754
        # rounding (x <= y implies fl(x-d) <= fl(y-d)), so the cache
        # follows the exact same operation sequence as the min element
        # and stays bitwise equal to _rem[:_n].min() — making the common
        # no-completion advance O(1) beyond the vectorized subtract.
        self._min_rem = math.inf
        self._events: List[SimEvent] = []
        self._arrivals: List[float] = []
        self._n = 0
        self._completion: Optional[EventHandle] = None
        self._last_update = sim.now
        self.busy_time = 0.0  # seconds with >=1 job present
        self.work_done = 0.0  # GHz-seconds actually processed
        self.completed_jobs = 0

    @property
    def capacity_ghz(self) -> float:
        """Current *effective* service capacity in GHz (after degradation)."""
        return self._capacity

    @property
    def nominal_capacity_ghz(self) -> float:
        """Allocated capacity in GHz, before any degradation."""
        return self._nominal

    @property
    def degrade_fraction(self) -> float:
        """Fraction of the nominal capacity currently delivered."""
        return self._degrade_fraction

    @property
    def queue_length(self) -> int:
        """Number of jobs currently in service."""
        return self._n

    def set_capacity(self, capacity_ghz: float) -> None:
        """Change capacity; in-flight jobs keep their remaining work."""
        if capacity_ghz < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity_ghz}")
        self._advance()
        self._nominal = float(capacity_ghz)
        self._capacity = self._nominal * self._degrade_fraction
        self._reschedule()

    def degrade(self, fraction: float) -> None:
        """Deliver only *fraction* of the nominal capacity (fault injection:
        the host crashed or throttled under the VM).  0 stalls the queue
        entirely; in-flight jobs keep their remaining work and resume when
        :meth:`restore` (or a later allocation change) lifts the fraction."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        self._advance()
        self._degrade_fraction = float(fraction)
        self._capacity = self._nominal * self._degrade_fraction
        self._reschedule()

    def restore(self) -> None:
        """Lift any degradation: effective capacity returns to nominal."""
        self.degrade(1.0)

    def submit(self, work_ghz_seconds: float) -> SimEvent:
        """Add a job of the given size; returns its completion event."""
        if work_ghz_seconds <= 0 or not math.isfinite(work_ghz_seconds):
            raise ValueError(f"work must be finite and > 0, got {work_ghz_seconds}")
        self._advance()
        ev = self.sim.event()
        n = self._n
        rem = self._rem
        if n == rem.shape[0]:
            grown = np.empty(2 * n, dtype=np.float64)
            grown[:n] = rem
            self._rem = rem = grown
        work = float(work_ghz_seconds)
        rem[n] = work
        if work < self._min_rem:
            self._min_rem = work
        self._events.append(ev)
        self._arrivals.append(self.sim.now)
        self._n = n + 1
        self._reschedule()
        return ev

    def reset_counters(self) -> None:
        """Zero the busy-time / work-done integrals (per-period stats)."""
        self._advance()
        self.busy_time = 0.0
        self.work_done = 0.0
        self.completed_jobs = 0

    # -- internal machinery ------------------------------------------------

    def _advance(self) -> None:
        """Account for processing between the last update and now.

        ``rate * dt`` is loop-invariant, so one vectorized in-place
        subtract performs exactly the reference's per-job
        ``remaining -= rate * dt``; the cached min follows the same
        scalar subtraction, so the no-completion case needs no
        reduction.  Finished jobs are swept in slot (= arrival =
        dict-insertion) order, matching the reference's completion
        order; their events fire only after the arrays are compacted,
        so callbacks observe the post-completion queue.
        """
        now = self.sim.now
        dt = now - self._last_update
        self._last_update = now
        n = self._n
        if dt <= 0 or not n:
            return
        cap = self._capacity
        dec = cap / n * dt
        self.busy_time += dt
        self.work_done += cap * dt
        rem = self._rem
        rem[:n] -= dec
        min_rem = self._min_rem - dec
        self._min_rem = min_rem
        if min_rem > 1e-12:
            return
        now_finished: List[Tuple[SimEvent, float]] = []
        events = self._events
        arrivals = self._arrivals
        if n <= 64:
            # Scalar sweep: below ~64 jobs, plain-Python iteration beats
            # numpy's per-call dispatch.  ``tolist`` round-trips float64
            # exactly, so values are unchanged bit for bit.
            keep_vals: List[float] = []
            keep_events: List[SimEvent] = []
            keep_arrivals: List[float] = []
            for i, v in enumerate(rem[:n].tolist()):
                if v <= 1e-12:
                    now_finished.append((events[i], arrivals[i]))
                else:
                    keep_vals.append(v)
                    keep_events.append(events[i])
                    keep_arrivals.append(arrivals[i])
            k = len(keep_vals)
            rem[:k] = keep_vals
            self._events = keep_events
            self._arrivals = keep_arrivals
            self._min_rem = min(keep_vals) if k else math.inf
        else:
            active = rem[:n]
            done_idx = np.nonzero(active <= 1e-12)[0]
            for i in done_idx:
                now_finished.append((events[i], arrivals[i]))
            survivors = active[active > 1e-12]
            k = survivors.size
            rem[:k] = survivors
            self._min_rem = float(survivors.min()) if k else math.inf
            for i in range(done_idx.size - 1, -1, -1):
                j = done_idx[i]
                del events[j]
                del arrivals[j]
        self._n = k
        self.completed_jobs += len(now_finished)
        for ev, arrival in now_finished:
            ev.succeed(now - arrival)

    def _reschedule(self) -> None:
        """(Re)book the next completion event from current state."""
        if self._completion is not None:
            self._completion.cancel()
            self._completion = None
        n = self._n
        if not n or self._capacity <= 0:
            return
        delay = max(self._min_rem, 0.0) * n / self._capacity
        self._completion = self.sim.schedule(delay, self._on_completion)

    def _on_completion(self) -> None:
        self._completion = None
        self._advance()
        self._reschedule()


class _FCFSJob:
    __slots__ = ("work", "done_event", "arrival_time")

    def __init__(self, work: float, done_event: SimEvent, arrival_time: float):
        self.work = work
        self.done_event = done_event
        self.arrival_time = arrival_time


class FCFSResource:
    """Single-server first-come-first-served queue (work in GHz-seconds).

    A capacity change takes effect immediately, including for the job in
    service (its remaining work is served at the new rate).
    """

    __slots__ = (
        "sim",
        "_capacity",
        "_queue",
        "_current",
        "_current_remaining",
        "_completion",
        "_last_update",
        "busy_time",
        "work_done",
        "completed_jobs",
    )

    def __init__(self, sim: Simulator, capacity_ghz: float):
        if capacity_ghz < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity_ghz}")
        self.sim = sim
        self._capacity = float(capacity_ghz)
        self._queue: List[_FCFSJob] = []
        self._current: Optional[_FCFSJob] = None
        self._current_remaining = 0.0
        self._completion: Optional[EventHandle] = None
        self._last_update = sim.now
        self.busy_time = 0.0
        self.work_done = 0.0
        self.completed_jobs = 0

    @property
    def capacity_ghz(self) -> float:
        """Current service capacity in GHz."""
        return self._capacity

    @property
    def queue_length(self) -> int:
        """Jobs waiting plus the one in service."""
        return len(self._queue) + (1 if self._current is not None else 0)

    def set_capacity(self, capacity_ghz: float) -> None:
        """Change the service rate, affecting the in-service job too."""
        if capacity_ghz < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity_ghz}")
        self._advance()
        self._capacity = float(capacity_ghz)
        self._reschedule()

    def submit(self, work_ghz_seconds: float) -> SimEvent:
        """Enqueue a job; returns its completion event (value = sojourn)."""
        if work_ghz_seconds <= 0 or not math.isfinite(work_ghz_seconds):
            raise ValueError(f"work must be finite and > 0, got {work_ghz_seconds}")
        self._advance()
        ev = self.sim.event()
        job = _FCFSJob(float(work_ghz_seconds), ev, self.sim.now)
        self._queue.append(job)
        if self._current is None:
            self._start_next()
        return ev

    def _advance(self) -> None:
        now = self.sim.now
        dt = now - self._last_update
        self._last_update = now
        if dt <= 0 or self._current is None:
            return
        self.busy_time += dt
        processed = self._capacity * dt
        self.work_done += processed
        self._current_remaining -= processed

    def _start_next(self) -> None:
        if not self._queue:
            return
        self._current = self._queue.pop(0)
        self._current_remaining = self._current.work
        self._reschedule()

    def _reschedule(self) -> None:
        if self._completion is not None:
            self._completion.cancel()
            self._completion = None
        if self._current is None or self._capacity <= 0:
            return
        delay = max(self._current_remaining, 0.0) / self._capacity
        self._completion = self.sim.schedule(delay, self._on_completion)

    def _on_completion(self) -> None:
        self._completion = None
        self._advance()
        job = self._current
        self._current = None
        if job is not None:
            self.completed_jobs += 1
            job.done_event.succeed(self.sim.now - job.arrival_time)
        self._start_next()
