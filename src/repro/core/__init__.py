"""The paper's primary contribution: two-level power management.

* :mod:`repro.core.controller` — application-level MIMO MPC response
  time controller (short time scale).
* :mod:`repro.core.arbitrator` — server-level CPU resource arbitrator
  with DVFS.
* :mod:`repro.core.optimizer` — data-center-level power optimizer
  (Minimum Slack / PAC / IPAC) and the pMapper baseline.
* :mod:`repro.core.manager` — the integrated solution of Fig. 1.
"""

from repro.core.arbitrator import ArbitrationResult, CPUResourceArbitrator
from repro.core.controller import (
    ControllerConfig,
    ResponseTimeController,
    exponential_reference,
)
from repro.core.manager import PowerManager, PowerManagerConfig
from repro.core.optimizer import (
    IPACConfig,
    Migration,
    PlacementPlan,
    PlacementProblem,
    ServerInfo,
    VMInfo,
    ipac,
    pac,
    pmapper,
)

__all__ = [
    "ArbitrationResult",
    "CPUResourceArbitrator",
    "ControllerConfig",
    "ResponseTimeController",
    "exponential_reference",
    "PowerManager",
    "PowerManagerConfig",
    "IPACConfig",
    "Migration",
    "PlacementPlan",
    "PlacementProblem",
    "ServerInfo",
    "VMInfo",
    "ipac",
    "pac",
    "pmapper",
]
