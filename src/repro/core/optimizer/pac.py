"""Power-Aware Consolidation — PAC (paper §V).

"In the first step, the servers are sorted by power efficiency, i.e.,
the ratio between the maximum CPU frequency and maximum power
consumption of the server.  Beginning from the most power-efficient
server, we use Algorithm 1 to select several VMs from the remaining
unallocated VMs, and then pack these VMs to this server such that the
unused CPU resource in this server is minimized.  We repeat this process
with the next most power-efficient server until every VM in the list is
allocated to a server."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.optimizer.minslack import MinSlackConfig, select_vms_for_server
from repro.core.optimizer.types import (
    Migration,
    PlacementPlan,
    PlacementProblem,
    ServerInfo,
    VMInfo,
)
from repro.util.validation import check_in_range

__all__ = ["PACConfig", "pac", "sort_servers_by_efficiency", "build_plan_from_mapping"]


@dataclass(frozen=True)
class PACConfig:
    """PAC tuning.

    ``target_utilization`` caps how full PAC packs each server (fraction
    of its maximum CPU capacity) so that normal demand jitter does not
    instantly overload a freshly packed host.

    ``incremental`` seeds each server's Minimum Slack search with the
    VMs the previous mapping put there (the problem's ``mapping``, or an
    explicit ``previous_mapping`` argument to :func:`pac`).  The seed is
    a starting incumbent the search must strictly beat, so the result is
    never worse than the previous selection — and when demand barely
    moved, the search early-exits on the seed in zero steps.
    """

    minslack: MinSlackConfig = field(default_factory=MinSlackConfig)
    target_utilization: float = 0.95
    incremental: bool = False

    def __post_init__(self):
        check_in_range("target_utilization", self.target_utilization, 0.1, 1.0)


def sort_servers_by_efficiency(
    servers: Sequence[ServerInfo], descending: bool = True
) -> List[ServerInfo]:
    """Order servers by GHz/W efficiency; ties broken by id for determinism."""
    return sorted(
        servers,
        key=lambda s: ((-s.efficiency if descending else s.efficiency), s.server_id),
    )


def build_plan_from_mapping(
    problem: PlacementProblem,
    final_mapping: Dict[str, str],
    unplaced: Sequence[str] = (),
) -> PlacementPlan:
    """Diff a final mapping against the problem's current state.

    Produces migrations (placements for previously-unmapped VMs), the
    wake list (inactive servers that now host VMs), and the sleep list
    (active servers left empty).
    """
    migrations: List[Migration] = []
    for vm in problem.vms:
        old = problem.mapping.get(vm.vm_id)
        new = final_mapping.get(vm.vm_id)
        if new is not None and new != old:
            migrations.append(Migration(vm.vm_id, old, new))
    hosts_in_use = set(final_mapping.values())
    wake = [
        s.server_id
        for s in problem.servers
        if not s.active and s.server_id in hosts_in_use
    ]
    sleep = [
        s.server_id
        for s in problem.servers
        if s.active and s.server_id not in hosts_in_use
    ]
    return PlacementPlan(
        migrations=migrations,
        wake=sorted(wake),
        sleep=sorted(sleep),
        final_mapping=dict(final_mapping),
        unplaced=list(unplaced),
    )


def pac(
    problem: PlacementProblem,
    vms_to_place: Optional[Sequence[str]] = None,
    config: PACConfig | None = None,
    previous_mapping: Optional[Dict[str, str]] = None,
) -> PlacementPlan:
    """Consolidate VMs onto the most power-efficient servers.

    Parameters
    ----------
    problem:
        The placement snapshot.
    vms_to_place:
        Ids of the VMs to (re)allocate.  ``None`` means all VMs — a
        from-scratch consolidation.  VMs not in this list stay where
        they are and consume capacity on their current hosts.
    config:
        PAC tuning.
    previous_mapping:
        When ``config.incremental`` is set, the mapping whose per-server
        selections seed each Minimum Slack search as its starting
        incumbent (defaults to ``problem.mapping``).  Seeds only speed
        the search up and bound it below — the plan is never worse than
        re-using the previous selections.

    Returns the placement plan; VMs that fit nowhere end up in
    ``plan.unplaced`` (and keep their current host in the mapping, if
    they had one).
    """
    config = config or PACConfig()
    vm_by_id = problem.vm_index()
    if vms_to_place is None:
        place_ids = [v.vm_id for v in problem.vms]
    else:
        place_ids = list(vms_to_place)
        for vm_id in place_ids:
            if vm_id not in vm_by_id:
                raise KeyError(f"unknown VM id {vm_id!r}")
    place_set = set(place_ids)
    if len(place_set) != len(place_ids):
        raise ValueError("vms_to_place contains duplicates")
    if config.incremental and previous_mapping is None:
        previous_mapping = problem.mapping

    # Residual load from VMs that are staying put.
    base_cpu: Dict[str, float] = {s.server_id: 0.0 for s in problem.servers}
    base_mem: Dict[str, float] = {s.server_id: 0.0 for s in problem.servers}
    final_mapping: Dict[str, str] = {}
    for vm_id, sid in problem.mapping.items():
        if vm_id not in place_set:
            base_cpu[sid] += vm_by_id[vm_id].demand_ghz
            base_mem[sid] += vm_by_id[vm_id].memory_mb
            final_mapping[vm_id] = sid

    seed_by_server: Dict[str, List[str]] = {}
    if config.incremental and previous_mapping:
        for vm_id in place_ids:
            sid = previous_mapping.get(vm_id)
            if sid is not None:
                seed_by_server.setdefault(sid, []).append(vm_id)

    remaining: List[VMInfo] = [vm_by_id[i] for i in sorted(place_set)]
    for server in problem.servers_by_efficiency():
        if not remaining:
            break
        free_cpu = (
            server.max_capacity_ghz * config.target_utilization
            - base_cpu[server.server_id]
        )
        free_mem = server.memory_mb - base_mem[server.server_id]
        if free_cpu <= 0 or free_mem < 0:
            continue
        chosen, _ = select_vms_for_server(
            free_cpu,
            max(free_mem, 0.0),
            remaining,
            config.minslack,
            incumbent_ids=seed_by_server.get(server.server_id),
        )
        if not chosen:
            continue
        chosen_ids = {vm.vm_id for vm in chosen}
        for vm in chosen:
            final_mapping[vm.vm_id] = server.server_id
        remaining = [vm for vm in remaining if vm.vm_id not in chosen_ids]

    unplaced = [vm.vm_id for vm in remaining]
    # An unplaceable VM keeps its old host rather than being dropped.
    for vm_id in unplaced:
        if vm_id in problem.mapping:
            final_mapping[vm_id] = problem.mapping[vm_id]
    return build_plan_from_mapping(problem, final_mapping, unplaced)
