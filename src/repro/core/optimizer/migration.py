"""Cost-aware VM migration policies (paper §V, "Cost-aware VM migration").

"When the IPAC algorithm requests a migration, benefits and costs should
be compared to decide if the migration should be allowed or rejected.
... the cost function can be highly different for different data
centers.  As a result, we provide an interface for data center
administrators to define their own cost functions based on their
various policies."

That interface is :class:`MigrationCostPolicy`.  Three stock policies
cover the common cases; administrators subclass for anything else.
Overload-relief migrations are *mandatory* — every stock policy lets
them through, since rejecting them would leave an SLA-violating host.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional

from repro.cluster.migration import LiveMigrationModel
from repro.core.optimizer.types import Migration, ServerInfo, VMInfo

__all__ = [
    "MigrationContext",
    "MigrationCostPolicy",
    "AllowAllPolicy",
    "BenefitThresholdPolicy",
    "BandwidthBudgetPolicy",
]


@dataclass(frozen=True)
class MigrationContext:
    """Everything a cost function may weigh for one proposed migration.

    ``estimated_benefit_w`` is the optimizer's estimate of steady-state
    power saved by this move (its share of a server shutdown plus the
    efficiency delta); ``mandatory`` marks overload-relief moves.
    """

    migration: Migration
    vm: VMInfo
    source: Optional[ServerInfo]
    target: ServerInfo
    estimated_benefit_w: float
    migration_model: LiveMigrationModel
    mandatory: bool

    @property
    def cost_duration_s(self) -> float:
        """Wall-clock duration of the transfer under the network model."""
        return self.migration_model.duration_s(self.vm.memory_mb)

    @property
    def cost_traffic_mb(self) -> float:
        """Megabytes the transfer puts on the migration network."""
        return self.migration_model.bytes_moved_mb(self.vm.memory_mb)


class MigrationCostPolicy(ABC):
    """Administrator-defined accept/reject decision for each migration."""

    @abstractmethod
    def allow(self, context: MigrationContext) -> bool:
        """Return True to execute the migration, False to reject it."""

    def reset(self) -> None:
        """Called once per optimizer invocation (stateful policies)."""


class AllowAllPolicy(MigrationCostPolicy):
    """Accept every migration (the paper's simulation default)."""

    def allow(self, context: MigrationContext) -> bool:
        return True


class BenefitThresholdPolicy(MigrationCostPolicy):
    """Accept when estimated energy saved over an amortization horizon
    exceeds the migration's energy cost by a safety factor.

    The migration itself burns roughly ``overhead_w`` on source + target
    for its duration; the move pays off when
    ``benefit_w * horizon_s >= factor * overhead_w * duration_s``.
    """

    def __init__(
        self,
        amortization_horizon_s: float = 4 * 3600.0,
        overhead_w: float = 30.0,
        safety_factor: float = 2.0,
    ):
        if amortization_horizon_s <= 0:
            raise ValueError("amortization_horizon_s must be positive")
        if overhead_w < 0:
            raise ValueError("overhead_w must be >= 0")
        if safety_factor <= 0:
            raise ValueError("safety_factor must be positive")
        self.amortization_horizon_s = float(amortization_horizon_s)
        self.overhead_w = float(overhead_w)
        self.safety_factor = float(safety_factor)

    def allow(self, context: MigrationContext) -> bool:
        if context.mandatory:
            return True
        benefit_j = context.estimated_benefit_w * self.amortization_horizon_s
        cost_j = self.overhead_w * context.cost_duration_s * self.safety_factor
        return benefit_j >= cost_j


class BandwidthBudgetPolicy(MigrationCostPolicy):
    """Cap total migration traffic per optimizer invocation.

    Models "network bandwidth is a bottleneck in a data center": once the
    per-invocation budget is spent, further non-mandatory migrations are
    rejected.  Migrations are offered in the optimizer's preference
    order, so the budget goes to the highest-value moves first.
    """

    def __init__(self, budget_mb_per_invocation: float):
        if budget_mb_per_invocation <= 0:
            raise ValueError("budget_mb_per_invocation must be positive")
        self.budget_mb = float(budget_mb_per_invocation)
        self._spent_mb = 0.0

    def reset(self) -> None:
        self._spent_mb = 0.0

    def allow(self, context: MigrationContext) -> bool:
        traffic = context.cost_traffic_mb
        if context.mandatory:
            self._spent_mb += traffic
            return True
        if self._spent_mb + traffic > self.budget_mb:
            return False
        self._spent_mb += traffic
        return True
