"""On-demand overload relief between optimizer invocations (paper §III).

"Between two consecutive invocations of the data center-level optimizer,
it is possible that an unexpected increase of the workload can cause a
severe overload on a server.  To deal with this problem, the solution in
this paper can be integrated with algorithms to move VMs from the
overloaded servers to idle servers in an on-demand manner.  An example
of such algorithms can be found in our previous work [25]."

This module implements that integration point: a fast, greedy relief
pass meant to run at control-period granularity.  Unlike IPAC it never
*optimizes* — it only evicts the smallest sufficient set of VMs from each
overloaded server and first-fits them onto hosts with headroom (waking
sleeping servers only as a last resort), so it is cheap enough to invoke
every few seconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.optimizer.pac import build_plan_from_mapping
from repro.core.optimizer.types import PlacementPlan, PlacementProblem
from repro.util.validation import check_in_range

__all__ = ["OnDemandConfig", "relieve_overloads"]


@dataclass(frozen=True)
class OnDemandConfig:
    """Relief tuning.

    A server is overloaded above ``overload_utilization`` of its maximum
    capacity; evictions stop once it is back under ``target_utilization``.
    Receivers are only loaded up to ``receiver_utilization`` so the
    relief itself does not create the next overload.
    """

    overload_utilization: float = 1.0
    target_utilization: float = 0.9
    receiver_utilization: float = 0.9
    allow_wake: bool = True

    def __post_init__(self):
        check_in_range("overload_utilization", self.overload_utilization, 0.1, 1.0)
        check_in_range("target_utilization", self.target_utilization, 0.1, 1.0)
        check_in_range("receiver_utilization", self.receiver_utilization, 0.1, 1.0)
        if self.target_utilization > self.overload_utilization:
            raise ValueError(
                "target_utilization must be <= overload_utilization "
                f"({self.target_utilization} > {self.overload_utilization})"
            )


def relieve_overloads(
    problem: PlacementProblem, config: OnDemandConfig | None = None
) -> PlacementPlan:
    """One greedy relief pass; returns a (possibly empty) plan.

    Evicted VMs go to the *most efficient* active receiver with room
    (preserving the consolidation objective as far as a greedy pass can),
    then to woken sleepers in efficiency order.  VMs that fit nowhere
    stay put and are reported in ``plan.unplaced`` — the signal that the
    next full IPAC invocation (or more hardware) is needed.
    """
    config = config or OnDemandConfig()
    vm_by_id = {v.vm_id: v for v in problem.vms}
    mapping: Dict[str, str] = dict(problem.mapping)

    loads: Dict[str, float] = {s.server_id: 0.0 for s in problem.servers}
    mems: Dict[str, float] = {s.server_id: 0.0 for s in problem.servers}
    for vm_id, sid in mapping.items():
        loads[sid] += vm_by_id[vm_id].demand_ghz
        mems[sid] += vm_by_id[vm_id].memory_mb

    overloaded = [
        s for s in problem.servers
        if loads[s.server_id] > s.max_capacity_ghz * config.overload_utilization + 1e-9
    ]
    if not overloaded:
        return build_plan_from_mapping(problem, mapping)

    # Receivers: active hosts first (no wake latency), efficiency-descending;
    # sleeping servers appended when waking is allowed.
    hosting = set(mapping.values())
    overloaded_ids = {s.server_id for s in overloaded}
    active_receivers = sorted(
        (s for s in problem.servers
         if (s.active or s.server_id in hosting) and s.server_id not in overloaded_ids),
        key=lambda s: (-s.efficiency, s.server_id),
    )
    sleeping_receivers = sorted(
        (s for s in problem.servers
         if not s.active and s.server_id not in hosting),
        key=lambda s: (-s.efficiency, s.server_id),
    ) if config.allow_wake else []
    receivers = active_receivers + [
        s for s in sleeping_receivers if s not in active_receivers
    ]

    unplaced: List[str] = []
    for server in sorted(overloaded, key=lambda s: s.server_id):
        sid = server.server_id
        target = server.max_capacity_ghz * config.target_utilization
        hosted = sorted(
            (v for v, host in mapping.items() if host == sid),
            key=lambda v: (vm_by_id[v].demand_ghz, v),
        )
        for vm_id in hosted:
            if loads[sid] <= target + 1e-9:
                break
            vm = vm_by_id[vm_id]
            placed = False
            for receiver in receivers:
                rid = receiver.server_id
                room = receiver.max_capacity_ghz * config.receiver_utilization - loads[rid]
                if vm.demand_ghz <= room + 1e-9 and mems[rid] + vm.memory_mb <= receiver.memory_mb + 1e-9:
                    mapping[vm_id] = rid
                    loads[sid] -= vm.demand_ghz
                    mems[sid] -= vm.memory_mb
                    loads[rid] += vm.demand_ghz
                    mems[rid] += vm.memory_mb
                    placed = True
                    break
            if not placed:
                unplaced.append(vm_id)

    plan = build_plan_from_mapping(problem, mapping)
    plan.unplaced = unplaced
    # Relief must never sleep servers; it runs on the short time scale.
    plan.sleep = []
    return plan
