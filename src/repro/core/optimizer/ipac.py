"""Incremental Power-Aware Consolidation — IPAC (paper §V).

Each invocation:

1. **Overload relief** — servers whose demand exceeds their capacity
   evict their smallest VMs into the migration list until they fit;
   these moves are mandatory.
2. **Incremental drain** — the VMs on the least power-efficient server
   currently hosting VMs are added to the migration list; PAC places the
   list (the victim itself excluded from receiving); the drain is kept
   when the estimated cluster power decreases and reverted otherwise,
   repeating with the next least efficient server until no improvement
   remains.  The paper phrases the loop condition as "until the number
   of active servers no longer decreases" — a proxy for its stated
   objective ("the total power consumption of the cluster as the design
   goal"); evaluating the power estimate directly is equivalent when a
   drain sleeps a server, and additionally rejects degenerate drains
   (e.g. relocating the only hosting server's VMs onto a worse machine
   merely because an idle server happened to still be awake).
3. **Cost-aware filter** — every resulting non-mandatory migration is
   offered to the administrator's :class:`MigrationCostPolicy` with an
   estimated power benefit; rejected moves are rolled back when safe.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.cluster.migration import LiveMigrationModel
from repro.core.optimizer.migration import (
    AllowAllPolicy,
    MigrationContext,
    MigrationCostPolicy,
)
from repro.core.optimizer.pac import PACConfig, build_plan_from_mapping, pac
from repro.core.optimizer.types import (
    Migration,
    PlacementPlan,
    PlacementProblem,
    ServerInfo,
    VMInfo,
)
from repro.obs import get_telemetry
from repro.util.validation import check_in_range

__all__ = ["IPACConfig", "ipac"]

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class IPACConfig:
    """IPAC tuning.

    ``overload_utilization`` is the fraction of maximum capacity above
    which a server counts as overloaded (1.0 = literally unable to host
    its VMs); evictions stop once the server is back under
    ``pac.target_utilization``.  ``max_drain_rounds`` bounds the drain
    loop (None = number of servers).
    """

    pac: PACConfig = field(default_factory=PACConfig)
    overload_utilization: float = 1.0
    max_drain_rounds: Optional[int] = None
    cost_policy: Optional[MigrationCostPolicy] = None
    migration_model: LiveMigrationModel = field(default_factory=LiveMigrationModel)

    def __post_init__(self):
        check_in_range("overload_utilization", self.overload_utilization, 0.1, 1.0)
        if self.max_drain_rounds is not None and self.max_drain_rounds < 0:
            raise ValueError(
                f"max_drain_rounds must be >= 0, got {self.max_drain_rounds}"
            )


def _hosting_servers(mapping: Dict[str, str]) -> Set[str]:
    return set(mapping.values())


def _estimate_power_w(problem: PlacementProblem, mapping: Dict[str, str]) -> float:
    """Steady-state power estimate of a candidate mapping (hosting
    servers only; non-hosting servers sleep at the end of the plan, and
    their constant sleep draw cancels out of any comparison)."""
    from repro.core.optimizer.exhaustive import placement_power_w

    return placement_power_w(problem, mapping, include_sleepers=False)


def _marginal_w_per_ghz(server: ServerInfo) -> float:
    return (server.busy_w - server.idle_w) / server.max_capacity_ghz


def _run_pac(
    problem: PlacementProblem,
    mapping: Dict[str, str],
    vm_ids: List[str],
    config: PACConfig,
    exclude_server: Optional[str] = None,
    previous_mapping: Optional[Dict[str, str]] = None,
) -> Tuple[Dict[str, str], List[str]]:
    """Place *vm_ids* via PAC against *mapping*; return (mapping, unplaced).

    ``exclude_server`` removes one (empty) server from consideration —
    used when draining, so that a victim tied in efficiency with its
    peers cannot simply receive its own VMs back.

    The sub-problem is a restriction of a snapshot that was already
    validated, so it is built with :meth:`PlacementProblem.trusted`,
    inheriting the parent's lookup indices and efficiency order instead
    of re-deriving them every drain round.
    """
    servers = problem.servers
    servers_sorted = problem.servers_by_efficiency()
    if exclude_server is not None:
        servers = tuple(s for s in servers if s.server_id != exclude_server)
        servers_sorted = tuple(
            s for s in servers_sorted if s.server_id != exclude_server
        )
    sub = PlacementProblem.trusted(
        servers,
        problem.vms,
        mapping,
        vm_index=problem.vm_index(),
        servers_sorted=servers_sorted,
    )
    plan = pac(sub, vm_ids, config, previous_mapping=previous_mapping)
    return plan.final_mapping, plan.unplaced


#: Ejection-chain repair bounds: how many displacements one chain may
#: make and how many search nodes one repair invocation may expand.
#: Small instances are solved exactly well within these bounds; at
#: production scale the search degrades gracefully into a bounded
#: best-effort pass.
_REPAIR_MAX_DEPTH = 8
_REPAIR_NODE_BUDGET = 5000


def _repair_unplaced(
    problem: PlacementProblem,
    mapping: Dict[str, str],
    unplaced: List[str],
    config: PACConfig,
) -> Tuple[Dict[str, str], List[str], Set[str]]:
    """Home still-unplaced VMs, displacing hosted VMs if necessary.

    PAC packs each server to minimise unused CPU without looking ahead,
    so a memory-heavy VM can end up homeless while the cluster as a
    whole has plenty of room — if some already-placed VMs stepped
    aside.  For each unplaced VM this runs a depth- and budget-bounded
    ejection-chain search: place the VM directly if any server has
    room, otherwise eject one hosted VM to make room and recursively
    re-home the ejected VM the same way.  All orderings are
    deterministic (efficiency order for servers, demand order for
    ejection candidates).  Returns the updated mapping, the VMs that
    still fit nowhere, and the ids of every VM displaced to make room
    (their moves are mandatory — they exist only to home an
    otherwise-homeless VM).
    """
    vm_by_id = problem.vm_index()
    loads: Dict[str, float] = {s.server_id: 0.0 for s in problem.servers}
    mems: Dict[str, float] = {s.server_id: 0.0 for s in problem.servers}
    for vm_id, sid in mapping.items():
        loads[sid] += vm_by_id[vm_id].demand_ghz
        mems[sid] += vm_by_id[vm_id].memory_mb
    servers = problem.servers_by_efficiency()
    budget = [_REPAIR_NODE_BUDGET]

    def fits(vm: VMInfo, server: ServerInfo, extra_cpu: float = 0.0,
             extra_mem: float = 0.0) -> bool:
        cap = server.max_capacity_ghz * config.target_utilization
        return (
            loads[server.server_id] - extra_cpu + vm.demand_ghz <= cap + 1e-9
            and mems[server.server_id] - extra_mem + vm.memory_mb
            <= server.memory_mb + 1e-9
        )

    def assign(vm: VMInfo, sid: str) -> None:
        old = mapping.get(vm.vm_id)
        if old is not None:
            loads[old] -= vm.demand_ghz
            mems[old] -= vm.memory_mb
        mapping[vm.vm_id] = sid
        loads[sid] += vm.demand_ghz
        mems[sid] += vm.memory_mb

    def unassign(vm: VMInfo) -> Optional[str]:
        sid = mapping.pop(vm.vm_id, None)
        if sid is not None:
            loads[sid] -= vm.demand_ghz
            mems[sid] -= vm.memory_mb
        return sid

    def place(vm: VMInfo, depth: int, in_chain: Set[str]) -> bool:
        """Place *vm* somewhere, ejecting at most *depth* further VMs.

        On failure the mapping is restored exactly; on success every
        touched assignment is final.
        """
        # The direct scan is never cut short by the budget: a VM is
        # reported unplaced only if no server has room for it outright.
        for server in servers:
            if fits(vm, server):
                assign(vm, server.server_id)
                return True
        if depth <= 0 or budget[0] <= 0:
            return False
        budget[0] -= 1
        for server in servers:
            hosted = sorted(
                (u for u, sid in mapping.items() if sid == server.server_id),
                key=lambda u: (vm_by_id[u].demand_ghz, u),
            )
            for u in hosted:
                if u in in_chain:
                    continue
                uvm = vm_by_id[u]
                if not fits(vm, server, extra_cpu=uvm.demand_ghz,
                            extra_mem=uvm.memory_mb):
                    continue
                if budget[0] <= 0:
                    return False
                budget[0] -= 1
                prior = unassign(uvm)
                assign(vm, server.server_id)
                if place(uvm, depth - 1, in_chain | {vm.vm_id, u}):
                    return True
                unassign(vm)
                if prior is not None:
                    assign(uvm, prior)
        return False

    before = dict(mapping)
    still: List[str] = []
    order = sorted(unplaced, key=lambda v: (-vm_by_id[v].demand_ghz, v))
    for vm_id in order:
        vm = vm_by_id[vm_id]
        # An unplaceable VM may sit on its old (overloaded) host as a
        # fallback; ignore that footprint while searching for a home.
        fallback = unassign(vm)
        if not place(vm, _REPAIR_MAX_DEPTH, {vm_id}):
            still.append(vm_id)
            if fallback is not None:
                assign(vm, fallback)
    moved = {
        vm_id for vm_id, sid in mapping.items()
        if vm_id not in unplaced and before.get(vm_id) != sid
    }
    return mapping, still, moved


def ipac(problem: PlacementProblem, config: IPACConfig | None = None) -> PlacementPlan:
    """One IPAC invocation; returns the placement plan.

    ``plan.info`` carries diagnostics: drain rounds attempted/accepted,
    number of mandatory (overload) evictions, and migrations rejected by
    the cost policy.  Telemetry: traced as the ``ipac.plan`` span (with
    nested ``ipac.overload_relief`` / ``ipac.drain`` / ``ipac.cost_filter``
    phase spans) and mirrored into ``ipac.*`` counters.
    """
    config = config or IPACConfig()
    tel = get_telemetry()
    if not tel.enabled:
        return _ipac(problem, config)
    with tel.span(
        "ipac.plan", vms=len(problem.vms), servers=len(problem.servers)
    ) as sp:
        plan = _ipac(problem, config)
        sp.annotate(moves=plan.n_moves, wake=len(plan.wake), sleep=len(plan.sleep))
    tel.count("ipac.plans")
    for key in ("drain_rounds_attempted", "drain_rounds_accepted",
                "overload_evictions", "migrations_rejected"):
        tel.count(f"ipac.{key}", plan.info.get(key, 0.0))
    return plan


def _ipac(problem: PlacementProblem, config: IPACConfig) -> PlacementPlan:
    """The three IPAC phases, factored out of the traced entry point."""
    tel = get_telemetry()
    vm_by_id: Dict[str, VMInfo] = problem.vm_index()
    server_by_id: Dict[str, ServerInfo] = problem.server_index()
    mapping: Dict[str, str] = dict(problem.mapping)
    unplaced: List[str] = []

    # Never placed yet (e.g. newly arrived applications): mandatory.
    new_vm_ids = sorted(v.vm_id for v in problem.vms if v.vm_id not in mapping)

    # ---- Phase A: overload relief (mandatory) -------------------------
    with tel.span("ipac.overload_relief"):
        loads: Dict[str, float] = {s.server_id: 0.0 for s in problem.servers}
        for vm_id, sid in mapping.items():
            loads[sid] += vm_by_id[vm_id].demand_ghz
        mandatory_ids: Set[str] = set(new_vm_ids)
        evictions: List[str] = list(new_vm_ids)
        for server in problem.servers:
            sid = server.server_id
            limit = server.max_capacity_ghz * config.overload_utilization
            if loads[sid] <= limit + 1e-9:
                continue
            target = server.max_capacity_ghz * config.pac.target_utilization
            hosted = sorted(
                (vm_id for vm_id, s in mapping.items() if s == sid),
                key=lambda v: (vm_by_id[v].demand_ghz, v),
            )
            for vm_id in hosted:
                if loads[sid] <= target + 1e-9:
                    break
                loads[sid] -= vm_by_id[vm_id].demand_ghz
                del mapping[vm_id]
                evictions.append(vm_id)
                mandatory_ids.add(vm_id)
        if evictions:
            mapping, failed = _run_pac(
                problem, mapping, evictions, config.pac,
                previous_mapping=problem.mapping,
            )
            unplaced.extend(failed)

    # ---- Phase B: incremental drain loop ------------------------------
    drained: Set[str] = set()
    rounds_attempted = 0
    rounds_accepted = 0
    max_rounds = (
        len(problem.servers) if config.max_drain_rounds is None else config.max_drain_rounds
    )
    with tel.span("ipac.drain") as drain_span:
        current_power = _estimate_power_w(problem, mapping)
        while rounds_attempted < max_rounds:
            hosting = _hosting_servers(mapping)
            candidates = sorted(
                (server_by_id[sid] for sid in hosting if sid not in drained),
                key=lambda s: (s.efficiency, s.server_id),
            )
            if not candidates:
                break
            victim = candidates[0]
            drained.add(victim.server_id)
            rounds_attempted += 1
            trial = dict(mapping)
            drain_ids = sorted(
                vm_id for vm_id, sid in trial.items() if sid == victim.server_id
            )
            for vm_id in drain_ids:
                del trial[vm_id]
            trial, failed = _run_pac(
                problem, trial, drain_ids, config.pac,
                exclude_server=victim.server_id,
                previous_mapping=problem.mapping,
            )
            if failed:
                continue  # could not rehome everything; keep current mapping
            trial_power = _estimate_power_w(problem, trial)
            if trial_power < current_power - 1e-9:
                mapping = trial
                current_power = trial_power
                rounds_accepted += 1
            else:
                break  # no further improvement: stop (paper's loop condition)
        drain_span.annotate(attempted=rounds_attempted, accepted=rounds_accepted)

    # ---- Retry VMs that found no home in phase A ----------------------
    # Draining can free capacity (a victim's VMs consolidate elsewhere,
    # leaving an efficient server empty), so a VM that fit nowhere before
    # the drain loop may fit now.  These VMs are hosted nowhere, so
    # placing them beats any power consideration.  When a straight
    # retry still fails, attempt a single-relocation repair: move one
    # hosted VM aside to open the needed room.  Repair moves become
    # mandatory — they exist only to home an otherwise-homeless VM.
    if unplaced:
        mapping, unplaced = _run_pac(
            problem, mapping, unplaced, config.pac,
            previous_mapping=problem.mapping,
        )
    if unplaced:
        mapping, unplaced, repair_moved = _repair_unplaced(
            problem, mapping, unplaced, config.pac
        )
        mandatory_ids.update(repair_moved)

    # ---- Phase C: cost-aware migration filter -------------------------
    with tel.span("ipac.cost_filter") as filter_span:
        policy = config.cost_policy or AllowAllPolicy()
        policy.reset()
        rejected = 0
        moves: List[Migration] = []
        for vm in problem.vms:
            old = problem.mapping.get(vm.vm_id)
            new = mapping.get(vm.vm_id)
            if new is not None and new != old:
                moves.append(Migration(vm.vm_id, old, new))
        # Mandatory moves first so budget-style policies fund them first.
        moves.sort(key=lambda m: (m.vm_id not in mandatory_ids, m.vm_id))

        # Per-source drained demand, for sharing out the shutdown benefit.
        drained_demand: Dict[str, float] = {}
        final_hosting = _hosting_servers(mapping)
        for mig in moves:
            if mig.source_id is not None:
                drained_demand[mig.source_id] = (
                    drained_demand.get(mig.source_id, 0.0)
                    + vm_by_id[mig.vm_id].demand_ghz
                )

        loads_after: Dict[str, float] = {s.server_id: 0.0 for s in problem.servers}
        mem_after: Dict[str, float] = {s.server_id: 0.0 for s in problem.servers}
        for vm_id, sid in mapping.items():
            loads_after[sid] += vm_by_id[vm_id].demand_ghz
            mem_after[sid] += vm_by_id[vm_id].memory_mb

        for mig in moves:
            mandatory = mig.vm_id in mandatory_ids or mig.source_id is None
            vm = vm_by_id[mig.vm_id]
            source = server_by_id.get(mig.source_id) if mig.source_id else None
            target = server_by_id[mig.target_id]
            benefit = 0.0
            if source is not None:
                benefit = vm.demand_ghz * (
                    _marginal_w_per_ghz(source) - _marginal_w_per_ghz(target)
                )
                if source.server_id not in final_hosting:
                    share = vm.demand_ghz / max(drained_demand.get(source.server_id, 0.0), 1e-12)
                    benefit += (source.idle_w - source.sleep_w) * min(share, 1.0)
            context = MigrationContext(
                migration=mig,
                vm=vm,
                source=source,
                target=target,
                estimated_benefit_w=benefit,
                migration_model=config.migration_model,
                mandatory=mandatory,
            )
            if policy.allow(context):
                continue
            # Roll back if the source can still take the VM back.
            assert mig.source_id is not None  # mandatory moves are never rejected
            src = server_by_id[mig.source_id]
            fits_cpu = (
                loads_after[mig.source_id] + vm.demand_ghz
                <= src.max_capacity_ghz * config.pac.target_utilization + 1e-9
            )
            fits_mem = mem_after[mig.source_id] + vm.memory_mb <= src.memory_mb + 1e-9
            if fits_cpu and fits_mem:
                loads_after[mig.target_id] -= vm.demand_ghz
                mem_after[mig.target_id] -= vm.memory_mb
                loads_after[mig.source_id] += vm.demand_ghz
                mem_after[mig.source_id] += vm.memory_mb
                mapping[mig.vm_id] = mig.source_id
                rejected += 1
        filter_span.annotate(offered=len(moves), rejected=rejected)

    plan = build_plan_from_mapping(problem, mapping, unplaced)
    plan.info.update(
        {
            "drain_rounds_attempted": float(rounds_attempted),
            "drain_rounds_accepted": float(rounds_accepted),
            "overload_evictions": float(len(evictions) - len(new_vm_ids)),
            "new_placements": float(len(new_vm_ids)),
            "migrations_rejected": float(rejected),
        }
    )
    logger.debug(
        "ipac: %d moves (%d mandatory evictions, %d new), drain %d/%d accepted, "
        "%d rejected by cost policy",
        plan.n_moves, len(evictions) - len(new_vm_ids), len(new_vm_ids),
        rounds_accepted, rounds_attempted, rejected,
    )
    return plan
