"""Domain wrapper of Minimum Bin Slack for one server (paper Algorithm 1).

Given one server's free CPU and memory plus a list of unallocated VMs,
select the VM subset that leaves the server with the least unallocated
CPU while respecting the memory constraint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.core.optimizer.types import VMInfo
from repro.obs import get_telemetry
from repro.packing.mbs import MBSResult, MemoryConstraint, minimum_bin_slack

__all__ = ["MinSlackConfig", "select_vms_for_server"]


@dataclass(frozen=True)
class MinSlackConfig:
    """Knobs of the per-server Minimum Slack search.

    ``epsilon_ghz`` is the allowed slack (Algorithm 1's eps);
    ``max_steps`` the per-escalation step budget; ``epsilon_step_ghz``
    the escalation increment (None = 5% of the free capacity);
    ``prune`` enables the suffix-sum dominance bound (see
    :func:`repro.packing.mbs.minimum_bin_slack` — ``False`` runs the
    exhaustive reference search).
    """

    epsilon_ghz: float = 0.05
    max_steps: int = 20000
    epsilon_step_ghz: float | None = None
    prune: bool = True

    def __post_init__(self):
        if self.epsilon_ghz < 0:
            raise ValueError(f"epsilon_ghz must be >= 0, got {self.epsilon_ghz}")
        if self.max_steps < 1:
            raise ValueError(f"max_steps must be >= 1, got {self.max_steps}")


def select_vms_for_server(
    free_capacity_ghz: float,
    free_memory_mb: float,
    candidates: Sequence[VMInfo],
    config: MinSlackConfig | None = None,
    incumbent_ids: Optional[Iterable[str]] = None,
) -> Tuple[List[VMInfo], MBSResult]:
    """Pick the VM subset that best fills the server's free CPU.

    ``incumbent_ids`` optionally seeds the search with a previous
    selection for this server (vm ids; unknown ids are ignored) — the
    incremental fast lane: the previous period's choice becomes the
    starting incumbent the search must strictly beat.

    Returns the chosen VMs and the raw search result (slack, steps,
    epsilon after escalations).  Telemetry: traced as the
    ``minslack.search`` span; nodes expanded and epsilon escalations
    accumulate into the ``minslack.nodes`` / ``minslack.eps_escalations``
    counters.  The branch-and-bound inner loop itself stays
    uninstrumented — effort is read off :class:`MBSResult` afterwards.
    """
    config = config or MinSlackConfig()
    if free_capacity_ghz < 0:
        raise ValueError(f"free_capacity_ghz must be >= 0, got {free_capacity_ghz}")
    if free_memory_mb < 0:
        raise ValueError(f"free_memory_mb must be >= 0, got {free_memory_mb}")
    sizes = [vm.demand_ghz for vm in candidates]
    constraint = MemoryConstraint([vm.memory_mb for vm in candidates], free_memory_mb)
    incumbent = None
    if incumbent_ids is not None:
        wanted = set(incumbent_ids)
        if wanted:
            incumbent = [i for i, vm in enumerate(candidates) if vm.vm_id in wanted]
    tel = get_telemetry()
    with tel.span("minslack.search", candidates=len(sizes)) as sp:
        result = minimum_bin_slack(
            sizes,
            free_capacity_ghz,
            constraint=constraint,
            epsilon=config.epsilon_ghz,
            max_steps=config.max_steps,
            epsilon_step=config.epsilon_step_ghz,
            incumbent=incumbent,
            prune=config.prune,
        )
        sp.annotate(
            nodes=result.steps,
            slack_ghz=result.slack,
            epsilon_used=result.epsilon_used,
            early_exit=result.early_exit,
        )
    if tel.enabled:
        tel.count("minslack.searches")
        tel.count("minslack.nodes", result.steps)
        tel.count("minslack.eps_escalations", result.steps // config.max_steps)
    chosen = [candidates[i] for i in result.selected]
    return chosen, result
