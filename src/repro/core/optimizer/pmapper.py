"""pMapper baseline (Verma et al., Middleware 2008), as the paper uses it.

Paper §VII: "PMapper is an incremental algorithm with two phases.  In
the first phase, it sorts the servers based on their power efficiency,
then consolidates the VMs to the servers using a first-fit algorithm,
beginning with the most power efficient server.  Note that in this
phase, the VMs are not actually migrated.  In the second phase, pMapper
computes the list of servers that require a higher utilization in the
new allocation, and labels them as receivers.  For each donor (servers
with a target utilization lower than the current utilization), it
selects the smallest-sized applications and adds them to a VM migration
list.  It then runs first-fit decreasing (FFD) to migrate the VMs in the
migration list to the receivers."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.core.optimizer.pac import build_plan_from_mapping, sort_servers_by_efficiency
from repro.core.optimizer.types import PlacementPlan, PlacementProblem, VMInfo
from repro.util.validation import check_in_range

__all__ = ["PMapperConfig", "pmapper"]


@dataclass(frozen=True)
class PMapperConfig:
    """pMapper tuning: same packing headroom as PAC for a fair fight."""

    target_utilization: float = 0.95

    def __post_init__(self):
        check_in_range("target_utilization", self.target_utilization, 0.1, 1.0)


def _ffd_assign(
    vms: List[VMInfo],
    server_order: List[str],
    free_cpu: Dict[str, float],
    free_mem: Dict[str, float],
) -> Dict[str, str]:
    """First-fit decreasing over an explicit server order; mutates the
    free-capacity dicts.  Returns vm_id -> server_id for placed VMs."""
    placed: Dict[str, str] = {}
    if not vms or not server_order:
        return placed
    cpu = np.asarray([free_cpu[s] for s in server_order])
    mem = np.asarray([free_mem[s] for s in server_order])
    order = sorted(range(len(vms)), key=lambda i: (-vms[i].demand_ghz, vms[i].vm_id))
    eps = 1e-9
    for i in order:
        vm = vms[i]
        ok = (cpu >= vm.demand_ghz - eps) & (mem >= vm.memory_mb - eps)
        j = int(np.argmax(ok))
        if not ok[j]:
            continue
        cpu[j] -= vm.demand_ghz
        mem[j] -= vm.memory_mb
        placed[vm.vm_id] = server_order[j]
    for j, sid in enumerate(server_order):
        free_cpu[sid] = float(cpu[j])
        free_mem[sid] = float(mem[j])
    return placed


def pmapper(problem: PlacementProblem, config: PMapperConfig | None = None) -> PlacementPlan:
    """One pMapper invocation; returns the placement plan."""
    config = config or PMapperConfig()
    vm_by_id = {v.vm_id: v for v in problem.vms}
    servers = sort_servers_by_efficiency(problem.servers)
    order = [s.server_id for s in servers]
    cap_cpu = {
        s.server_id: s.max_capacity_ghz * config.target_utilization for s in servers
    }
    cap_mem = {s.server_id: float(s.memory_mb) for s in servers}

    # ---- Phase 1: virtual FFD of every VM onto efficiency-sorted servers.
    free_cpu = dict(cap_cpu)
    free_mem = dict(cap_mem)
    all_vms = sorted(problem.vms, key=lambda v: v.vm_id)
    target_mapping = _ffd_assign(list(all_vms), order, free_cpu, free_mem)

    # Per-server target and current loads.
    target_load: Dict[str, float] = {sid: 0.0 for sid in order}
    for vm_id, sid in target_mapping.items():
        target_load[sid] += vm_by_id[vm_id].demand_ghz
    current_load: Dict[str, float] = {sid: 0.0 for sid in order}
    current_mem: Dict[str, float] = {sid: 0.0 for sid in order}
    for vm_id, sid in problem.mapping.items():
        current_load[sid] += vm_by_id[vm_id].demand_ghz
        current_mem[sid] += vm_by_id[vm_id].memory_mb

    # ---- Phase 2: donors shed their smallest VMs; FFD onto receivers.
    eps = 1e-9
    receivers = [sid for sid in order if target_load[sid] > current_load[sid] + eps]
    migration_list: List[VMInfo] = []
    mapping: Dict[str, str] = dict(problem.mapping)

    # VMs that are not placed anywhere yet must move regardless.
    for vm in all_vms:
        if vm.vm_id not in mapping:
            migration_list.append(vm)

    for sid in order:
        if target_load[sid] >= current_load[sid] - eps:
            continue  # not a donor
        hosted = sorted(
            (vm_id for vm_id, s in mapping.items() if s == sid),
            key=lambda v: (vm_by_id[v].demand_ghz, v),
        )
        load = current_load[sid]
        for vm_id in hosted:
            if load <= target_load[sid] + eps:
                break
            vm = vm_by_id[vm_id]
            migration_list.append(vm)
            del mapping[vm_id]
            load -= vm.demand_ghz
            current_mem[sid] -= vm.memory_mb
        current_load[sid] = load

    recv_free_cpu = {sid: cap_cpu[sid] - current_load[sid] for sid in receivers}
    recv_free_mem = {sid: cap_mem[sid] - current_mem[sid] for sid in receivers}
    placed = _ffd_assign(migration_list, receivers, recv_free_cpu, recv_free_mem)
    unplaced: List[str] = []
    for vm in migration_list:
        sid = placed.get(vm.vm_id)
        if sid is not None:
            mapping[vm.vm_id] = sid
        elif vm.vm_id in problem.mapping:
            mapping[vm.vm_id] = problem.mapping[vm.vm_id]  # stay put
        else:
            unplaced.append(vm.vm_id)

    return build_plan_from_mapping(problem, mapping, unplaced)
