"""Data types exchanged between the data center and the optimizers.

Optimizers work on immutable *snapshots* (:class:`PlacementProblem`) and
return *plans* (:class:`PlacementPlan`); only the
:class:`repro.cluster.datacenter.DataCenter` mutates real state.  This
separation makes the packing algorithms pure functions — directly
testable and trivially comparable against baselines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.datacenter import DataCenter
from repro.cluster.migration import MigrationFailedError, MigrationRecord

__all__ = [
    "VMInfo",
    "ServerInfo",
    "PlacementProblem",
    "Migration",
    "PlacementPlan",
    "ApplyReport",
    "make_vm_infos",
    "snapshot_datacenter",
    "apply_plan",
]


@dataclass(frozen=True)
class VMInfo:
    """Optimizer view of a VM: id + resource requirements."""

    vm_id: str
    demand_ghz: float
    memory_mb: float

    def __post_init__(self):
        if self.demand_ghz < 0:
            raise ValueError(f"demand_ghz must be >= 0, got {self.demand_ghz}")
        if self.memory_mb < 0:
            raise ValueError(f"memory_mb must be >= 0, got {self.memory_mb}")


@dataclass(frozen=True)
class ServerInfo:
    """Optimizer view of a server: capacities, power, and state.

    ``efficiency`` is the paper's sort key — maximum total CPU capacity
    divided by maximum power consumption (GHz/W).
    """

    server_id: str
    max_capacity_ghz: float
    memory_mb: float
    efficiency: float
    active: bool
    idle_w: float
    busy_w: float
    sleep_w: float

    def __post_init__(self):
        if self.max_capacity_ghz <= 0:
            raise ValueError(f"max_capacity_ghz must be > 0, got {self.max_capacity_ghz}")
        if self.efficiency <= 0:
            raise ValueError(f"efficiency must be > 0, got {self.efficiency}")


@dataclass(frozen=True)
class PlacementProblem:
    """A read-only snapshot of the placement state.

    ``mapping`` sends each VM id to its current server id (absent =
    unplaced).  All referenced ids must exist in ``servers`` / ``vms``.
    """

    servers: Tuple[ServerInfo, ...]
    vms: Tuple[VMInfo, ...]
    mapping: Dict[str, str]

    def __post_init__(self):
        server_ids = {s.server_id for s in self.servers}
        vm_ids = {v.vm_id for v in self.vms}
        if len(server_ids) != len(self.servers):
            raise ValueError("duplicate server ids in problem")
        if len(vm_ids) != len(self.vms):
            raise ValueError("duplicate VM ids in problem")
        for vm_id, sid in self.mapping.items():
            if vm_id not in vm_ids:
                raise ValueError(f"mapping references unknown VM {vm_id!r}")
            if sid not in server_ids:
                raise ValueError(f"mapping references unknown server {sid!r}")

    @classmethod
    def trusted(
        cls,
        servers: Tuple[ServerInfo, ...],
        vms: Tuple[VMInfo, ...],
        mapping: Dict[str, str],
        *,
        vm_index: Optional[Dict[str, VMInfo]] = None,
        server_index: Optional[Dict[str, ServerInfo]] = None,
        servers_sorted: Optional[Tuple[ServerInfo, ...]] = None,
    ) -> "PlacementProblem":
        """Construct without re-running the consistency validation.

        For hot loops that derive one problem from another (optimizer
        drain rounds, per-step simulation snapshots) where the invariants
        are guaranteed by construction.  Optionally pre-seeds the lazy
        lookup caches so derived problems share the parent's indices.
        """
        obj = object.__new__(cls)
        object.__setattr__(obj, "servers", servers)
        object.__setattr__(obj, "vms", vms)
        object.__setattr__(obj, "mapping", mapping)
        if vm_index is not None:
            object.__setattr__(obj, "_vm_index", vm_index)
        if server_index is not None:
            object.__setattr__(obj, "_server_index", server_index)
        if servers_sorted is not None:
            object.__setattr__(obj, "_servers_sorted", servers_sorted)
        return obj

    # Lookup indices and the efficiency order are built lazily on first
    # use and memoized on the (frozen) instance: snapshots are immutable,
    # so each is computed at most once per problem instead of per query.

    def vm_index(self) -> Dict[str, VMInfo]:
        """Memoized ``vm_id -> VMInfo`` lookup table."""
        cached = getattr(self, "_vm_index", None)
        if cached is None:
            cached = {v.vm_id: v for v in self.vms}
            object.__setattr__(self, "_vm_index", cached)
        return cached

    def server_index(self) -> Dict[str, ServerInfo]:
        """Memoized ``server_id -> ServerInfo`` lookup table."""
        cached = getattr(self, "_server_index", None)
        if cached is None:
            cached = {s.server_id: s for s in self.servers}
            object.__setattr__(self, "_server_index", cached)
        return cached

    def servers_by_efficiency(self) -> Tuple[ServerInfo, ...]:
        """Servers ordered most power-efficient first (GHz/W, ties by
        id) — the paper's packing order, memoized per snapshot."""
        cached = getattr(self, "_servers_sorted", None)
        if cached is None:
            cached = tuple(
                sorted(self.servers, key=lambda s: (-s.efficiency, s.server_id))
            )
            object.__setattr__(self, "_servers_sorted", cached)
        return cached

    def server_by_id(self, server_id: str) -> ServerInfo:
        """Look up a server snapshot by id."""
        try:
            return self.server_index()[server_id]
        except KeyError:
            raise KeyError(f"unknown server id {server_id!r}") from None

    def vm_by_id(self, vm_id: str) -> VMInfo:
        """Look up a VM snapshot by id."""
        try:
            return self.vm_index()[vm_id]
        except KeyError:
            raise KeyError(f"unknown VM id {vm_id!r}") from None

    def vms_on(self, server_id: str) -> List[VMInfo]:
        """VM snapshots currently mapped to *server_id*."""
        return [v for v in self.vms if self.mapping.get(v.vm_id) == server_id]

    def server_load_ghz(self, server_id: str) -> float:
        """Total demand currently mapped to *server_id*."""
        return sum(v.demand_ghz for v in self.vms_on(server_id))

    def server_memory_used_mb(self, server_id: str) -> float:
        """Total VM memory currently mapped to *server_id*."""
        return sum(v.memory_mb for v in self.vms_on(server_id))


@dataclass(frozen=True)
class Migration:
    """One proposed VM move.  ``source_id`` is None for initial placement."""

    vm_id: str
    source_id: Optional[str]
    target_id: str


@dataclass
class PlacementPlan:
    """The optimizer's output: moves plus power-state commands.

    ``final_mapping`` is the complete vm→server mapping after the plan;
    ``unplaced`` lists VMs no server could host (should be empty when
    the inactive pool is large enough).
    """

    migrations: List[Migration] = field(default_factory=list)
    wake: List[str] = field(default_factory=list)
    sleep: List[str] = field(default_factory=list)
    final_mapping: Dict[str, str] = field(default_factory=dict)
    unplaced: List[str] = field(default_factory=list)
    info: Dict[str, float] = field(default_factory=dict)

    @property
    def n_moves(self) -> int:
        """Number of true migrations (existing VMs changing hosts)."""
        return sum(1 for m in self.migrations if m.source_id is not None)


@dataclass
class ApplyReport:
    """What actually happened when a plan hit the live data center.

    In a fault-free world every planned move lands and the report is
    all-success.  Under fault injection, migrations can be disrupted
    (``failed_migrations``), wake commands can target crashed hardware
    (``skipped_wake``), and a sleep command for a server still hosting
    a VM whose outbound move failed is skipped (``skipped_sleep``).

    ``records`` carries one :class:`MigrationRecord` per completed
    migration, so callers can account each move's ``duration_s`` and
    ``bytes_moved_mb`` instead of treating it as instantaneous and
    free; ``retries`` counts failed attempts that a later attempt
    redeemed.
    """

    records: List[MigrationRecord] = field(default_factory=list)
    placed: List[str] = field(default_factory=list)
    failed_migrations: List[Migration] = field(default_factory=list)
    skipped_wake: List[str] = field(default_factory=list)
    skipped_sleep: List[str] = field(default_factory=list)
    retries: int = 0

    @property
    def n_completed(self) -> int:
        """Completed migrations (true moves, not initial placements)."""
        return len(self.records)

    @property
    def total_duration_s(self) -> float:
        """Aggregate live-migration wall time across completed moves."""
        return sum(r.duration_s for r in self.records)

    @property
    def total_bytes_moved_mb(self) -> float:
        """Aggregate migration traffic across completed moves."""
        return sum(r.bytes_moved_mb for r in self.records)


def make_vm_infos(
    vm_ids: Sequence[str],
    demands_ghz: Sequence[float],
    memories_mb: Sequence[float],
) -> Tuple[VMInfo, ...]:
    """Build a tuple of :class:`VMInfo` with the validation vectorized.

    Equivalent to constructing each ``VMInfo`` individually (same ids,
    same float values) but checks non-negativity once over the whole
    arrays — the per-step snapshot path of the large-scale harness
    rebuilds these for hundreds of VMs every trace step.
    """
    demands = np.asarray(demands_ghz, dtype=float)
    memories = np.asarray(memories_mb, dtype=float)
    if demands.shape != (len(vm_ids),) or memories.shape != (len(vm_ids),):
        raise ValueError(
            f"vm_ids/demands/memories lengths disagree: "
            f"{len(vm_ids)}/{demands.shape}/{memories.shape}"
        )
    if np.any(demands < 0):
        raise ValueError("demand_ghz must be >= 0 for every VM")
    if np.any(memories < 0):
        raise ValueError("memory_mb must be >= 0 for every VM")
    new = object.__new__
    setter = object.__setattr__
    out = []
    for vm_id, demand, memory in zip(vm_ids, demands.tolist(), memories.tolist()):
        vm = new(VMInfo)
        setter(vm, "vm_id", vm_id)
        setter(vm, "demand_ghz", demand)
        setter(vm, "memory_mb", memory)
        out.append(vm)
    return tuple(out)


def snapshot_datacenter(dc: DataCenter) -> PlacementProblem:
    """Build an optimizer snapshot from live data-center state.

    Crashed servers are excluded entirely: they cannot host, cannot be
    woken, and (post-eviction) host nothing, so the optimizer must not
    see them as a sleeping resource it could recruit.  Capacity and
    efficiency reflect any thermal throttle currently applied.
    """
    servers = tuple(
        ServerInfo(
            server_id=s.server_id,
            max_capacity_ghz=s.max_capacity_ghz,
            memory_mb=float(s.spec.memory_mb),
            efficiency=s.max_capacity_ghz / s.spec.power.busy_w,
            active=s.active,
            idle_w=s.spec.power.idle_w,
            busy_w=s.spec.power.busy_w,
            sleep_w=s.spec.power.sleep_w,
        )
        for _, s in sorted(dc.servers.items())
        if not s.failed
    )
    vms = tuple(
        VMInfo(vm_id=v.vm_id, demand_ghz=v.demand_ghz, memory_mb=float(v.memory_mb))
        for _, v in sorted(dc.vms.items())
    )
    return PlacementProblem(servers=servers, vms=vms, mapping=dc.mapping())


def apply_plan(
    dc: DataCenter,
    plan: PlacementPlan,
    time_s: float = 0.0,
    max_attempts: int = 3,
    retry_backoff_s: float = 5.0,
) -> ApplyReport:
    """Execute a plan against the live data center.

    Order matters: wake targets first, then move VMs, then sleep the
    emptied servers — the same sequencing a real orchestrator needs.

    The execution is fault-tolerant:

    * wake commands for servers that crashed between planning and
      execution are skipped (the plan is stale, not wrong);
    * a disrupted migration (:class:`MigrationFailedError`) is retried
      up to ``max_attempts`` times, each attempt stamped
      ``retry_backoff_s`` later; if every attempt fails the VM stays on
      its source (the failure is atomic, so rollback is a no-op) and the
      move is reported in ``failed_migrations``;
    * sleep commands are skipped for servers left non-empty by a failed
      outbound migration.

    Returns an :class:`ApplyReport` with per-migration records
    (duration, bytes moved) and everything that was skipped.
    """
    if max_attempts < 1:
        raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
    report = ApplyReport()
    for sid in plan.wake:
        if dc.servers[sid].failed:
            report.skipped_wake.append(sid)
            continue
        dc.wake_server(sid)
    for mig in plan.migrations:
        target = dc.servers[mig.target_id]
        if target.failed or not target.active:
            # Target crashed (or its wake was skipped) after planning.
            report.failed_migrations.append(mig)
            continue
        if mig.source_id is None:
            if dc.server_of(mig.vm_id) is None:
                dc.place(mig.vm_id, mig.target_id)
                report.placed.append(mig.vm_id)
            continue
        if dc.server_of(mig.vm_id) == mig.target_id:
            continue
        for attempt in range(1, max_attempts + 1):
            try:
                record = dc.migrate(
                    mig.vm_id,
                    mig.target_id,
                    time_s=time_s + (attempt - 1) * retry_backoff_s,
                )
            except MigrationFailedError:
                if attempt == max_attempts:
                    report.failed_migrations.append(mig)
                else:
                    report.retries += 1
            else:
                report.records.append(record)
                break
    for sid in plan.sleep:
        if dc.vms_on(sid):
            report.skipped_sleep.append(sid)
            continue
        dc.sleep_server(sid)
    return report
