"""Data-center-level power optimizer (paper §V) and the pMapper baseline."""

from repro.core.optimizer.exhaustive import optimal_placement_power, placement_power_w
from repro.core.optimizer.ipac import IPACConfig, ipac
from repro.core.optimizer.ondemand import OnDemandConfig, relieve_overloads
from repro.core.optimizer.migration import (
    AllowAllPolicy,
    BandwidthBudgetPolicy,
    BenefitThresholdPolicy,
    MigrationContext,
    MigrationCostPolicy,
)
from repro.core.optimizer.minslack import MinSlackConfig, select_vms_for_server
from repro.core.optimizer.pac import PACConfig, pac, sort_servers_by_efficiency
from repro.core.optimizer.pmapper import PMapperConfig, pmapper
from repro.core.optimizer.types import (
    Migration,
    PlacementPlan,
    PlacementProblem,
    ServerInfo,
    VMInfo,
    apply_plan,
    snapshot_datacenter,
)

__all__ = [
    "optimal_placement_power",
    "placement_power_w",
    "IPACConfig",
    "ipac",
    "OnDemandConfig",
    "relieve_overloads",
    "AllowAllPolicy",
    "BandwidthBudgetPolicy",
    "BenefitThresholdPolicy",
    "MigrationContext",
    "MigrationCostPolicy",
    "MinSlackConfig",
    "select_vms_for_server",
    "PACConfig",
    "pac",
    "sort_servers_by_efficiency",
    "PMapperConfig",
    "pmapper",
    "Migration",
    "PlacementPlan",
    "PlacementProblem",
    "ServerInfo",
    "VMInfo",
    "apply_plan",
    "snapshot_datacenter",
]
