"""Exhaustive optimal placement for tiny instances (testing oracle).

The consolidation problem is NP-hard (§V), so the paper uses heuristics;
for instances of a handful of VMs and servers, however, the true optimum
is computable by brute force.  The test suite uses this oracle to bound
how far PAC/IPAC land from optimal — evidence the heuristics do what the
paper claims, not just that they run.

The objective mirrors the simulators' steady-state power accounting:
hosting servers pay ``idle_w`` plus a load-proportional dynamic term;
empty servers sleep at ``sleep_w`` (excluded, matching the harnesses'
"sleeping pool is not billed" convention via the ``include_sleepers``
flag).
"""

from __future__ import annotations

from itertools import product
from typing import Dict, Optional, Tuple

from repro.core.optimizer.types import PlacementProblem

__all__ = ["optimal_placement_power", "placement_power_w"]


def placement_power_w(
    problem: PlacementProblem,
    mapping: Dict[str, str],
    include_sleepers: bool = False,
) -> float:
    """Steady-state power of a placement (W).

    Hosting servers: ``idle_w + (busy_w - idle_w) * load / max_capacity``.
    Non-hosting servers contribute ``sleep_w`` only when
    ``include_sleepers`` is set.
    """
    loads: Dict[str, float] = {}
    for vm_id, sid in mapping.items():
        loads[sid] = loads.get(sid, 0.0) + problem.vm_by_id(vm_id).demand_ghz
    total = 0.0
    for server in problem.servers:
        load = loads.get(server.server_id)
        if load is None:
            if include_sleepers:
                total += server.sleep_w
            continue
        util = min(load / server.max_capacity_ghz, 1.0)
        total += server.idle_w + (server.busy_w - server.idle_w) * util
    return total


def optimal_placement_power(
    problem: PlacementProblem,
    max_states: int = 2_000_000,
    include_sleepers: bool = False,
) -> Tuple[float, Optional[Dict[str, str]]]:
    """Minimum achievable power over all feasible complete placements.

    Enumerates every assignment of VMs to servers (``S^V`` states), so it
    is only usable for oracle-sized instances; ``max_states`` guards
    against accidental explosions.  Returns ``(power_w, mapping)``;
    mapping is ``None`` when no feasible complete placement exists.
    """
    n_states = len(problem.servers) ** len(problem.vms)
    if n_states > max_states:
        raise ValueError(
            f"{n_states} states exceed max_states={max_states}; "
            "this oracle is for tiny instances only"
        )
    server_ids = [s.server_id for s in problem.servers]
    caps = {s.server_id: s.max_capacity_ghz for s in problem.servers}
    mems = {s.server_id: s.memory_mb for s in problem.servers}
    best_power = float("inf")
    best_mapping: Optional[Dict[str, str]] = None
    vms = problem.vms
    for combo in product(server_ids, repeat=len(vms)):
        load: Dict[str, float] = {}
        mem: Dict[str, float] = {}
        feasible = True
        for vm, sid in zip(vms, combo):
            load[sid] = load.get(sid, 0.0) + vm.demand_ghz
            mem[sid] = mem.get(sid, 0.0) + vm.memory_mb
            if load[sid] > caps[sid] + 1e-9 or mem[sid] > mems[sid] + 1e-9:
                feasible = False
                break
        if not feasible:
            continue
        mapping = {vm.vm_id: sid for vm, sid in zip(vms, combo)}
        power = placement_power_w(problem, mapping, include_sleepers)
        if power < best_power - 1e-12:
            best_power = power
            best_mapping = mapping
    if best_mapping is None:
        return float("inf"), None
    return best_power, best_mapping
