"""The integrated two-level power management solution (paper Fig. 1).

``PowerManager`` wires together, over one :class:`~repro.cluster.datacenter.DataCenter`:

* one :class:`~repro.core.controller.ResponseTimeController` per
  application (short time scale — every control period);
* one :class:`~repro.core.arbitrator.CPUResourceArbitrator` pass per
  active server (same period: DVFS + share allocation);
* one data-center-level optimizer invocation (long time scale —
  IPAC by default, pluggable for baselines such as pMapper).
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional

import numpy as np

from repro.cluster.datacenter import DataCenter
from repro.core.arbitrator import ArbitrationResult, CPUResourceArbitrator
from repro.core.controller.response_time_controller import ResponseTimeController
from repro.core.optimizer.ipac import IPACConfig, ipac
from repro.core.optimizer.types import (
    PlacementPlan,
    PlacementProblem,
    apply_plan,
    snapshot_datacenter,
)
from repro.obs import get_telemetry
from repro.util.validation import check_positive

__all__ = ["PowerManagerConfig", "ControlStepResult", "PowerManager"]

logger = logging.getLogger(__name__)

Optimizer = Callable[[PlacementProblem], PlacementPlan]


@dataclass(frozen=True)
class PowerManagerConfig:
    """Timing and arbitration settings of the integrated manager.

    The paper's separation of time scales: "the response time controller
    is invoked on a small time scale (several seconds) ... while the
    power optimizer is invoked on a longer time scale (hours to days)".
    """

    control_period_s: float = 15.0
    optimizer_period_s: float = 4 * 3600.0
    arbitrator_headroom: float = 0.95

    def __post_init__(self):
        check_positive("control_period_s", self.control_period_s)
        check_positive("optimizer_period_s", self.optimizer_period_s)
        if self.optimizer_period_s < self.control_period_s:
            raise ValueError(
                "optimizer_period_s must be >= control_period_s "
                f"({self.optimizer_period_s} < {self.control_period_s})"
            )


@dataclass
class ControlStepResult:
    """Everything one control period produced.

    ``granted_ghz`` maps app_id -> per-tier allocations actually granted
    (post-arbitration); ``arbitration`` maps server_id -> its result;
    ``overloaded_servers`` lists hosts whose demand exceeded capacity.
    """

    granted_ghz: Dict[str, np.ndarray] = field(default_factory=dict)
    arbitration: Dict[str, ArbitrationResult] = field(default_factory=dict)
    overloaded_servers: List[str] = field(default_factory=list)


class PowerManager:
    """Coordinates controllers, arbitrators, and the optimizer."""

    def __init__(
        self,
        dc: DataCenter,
        config: PowerManagerConfig | None = None,
        optimizer: Optional[Optimizer] = None,
    ):
        self.dc = dc
        self.config = config or PowerManagerConfig()
        self.optimizer: Optimizer = optimizer or (lambda p: ipac(p, IPACConfig()))
        self.arbitrator = CPUResourceArbitrator(self.config.arbitrator_headroom)
        self.controllers: Dict[str, ResponseTimeController] = {}

    def register_controller(self, app_id: str, controller: ResponseTimeController) -> None:
        """Attach the response-time controller for a registered app."""
        app = self.dc.applications.get(app_id)
        if app is None:
            raise KeyError(f"unknown application id {app_id!r}")
        if controller.model.n_inputs != app.n_tiers:
            raise ValueError(
                f"controller has {controller.model.n_inputs} inputs but "
                f"{app_id} has {app.n_tiers} tiers"
            )
        self.controllers[app_id] = controller

    def control_step(
        self,
        measurements: Mapping[str, float],
        used_ghz: Optional[Mapping[str, "np.ndarray"]] = None,
        time_s: float = float("nan"),
    ) -> ControlStepResult:
        """Run one control period across all applications and servers.

        ``measurements`` maps app_id -> measured 90-percentile response
        time (ms; NaN allowed); ``used_ghz`` optionally maps app_id ->
        measured per-tier CPU consumption (feeds each controller's
        utilization-band guard).  Updates VM demands and allocations in
        the data center, applies DVFS, and feeds the granted (possibly
        rationed) allocations back to each controller (anti-windup).
        ``time_s`` stamps the emitted telemetry (simulated seconds); it
        does not affect control.
        """
        tel = get_telemetry()
        if not tel.enabled:
            return self._control_step(measurements, used_ghz)
        with tel.span("manager.control_step", apps=len(measurements)):
            result = self._control_step(measurements, used_ghz)
        tel.count("manager.control_steps")
        if result.overloaded_servers:
            logger.warning(
                "control step t=%.1fs: overloaded servers %s",
                time_s, result.overloaded_servers,
            )
        tel.event(
            "control_period",
            time_s=time_s,
            apps={
                app_id: {
                    "rt_ms": float(measurements[app_id]),
                    "setpoint_ms": self.controllers[app_id].config.setpoint_ms,
                    "granted_ghz": [float(g) for g in granted],
                    "demand_ghz": [
                        float(self.dc.vms[vm_id].demand_ghz)
                        for vm_id in self.dc.applications[app_id].vm_ids
                    ],
                }
                for app_id, granted in result.granted_ghz.items()
            },
            overloaded=list(result.overloaded_servers),
            freqs_ghz={
                sid: arb.freq_ghz for sid, arb in result.arbitration.items()
            },
        )
        return result

    def _control_step(
        self,
        measurements: Mapping[str, float],
        used_ghz: Optional[Mapping[str, "np.ndarray"]] = None,
    ) -> ControlStepResult:
        """The three-phase control period, factored out of the traced entry."""
        dc = self.dc
        # 1. Application level: controllers emit new per-VM demands.
        for app_id, rt_ms in measurements.items():
            controller = self.controllers.get(app_id)
            if controller is None:
                raise KeyError(f"no controller registered for {app_id!r}")
            usage = used_ghz.get(app_id) if used_ghz is not None else None
            demands = controller.update(rt_ms, used_ghz=usage)
            app = dc.applications[app_id]
            for vm_id, demand in zip(app.vm_ids, demands):
                dc.vms[vm_id].set_demand(float(demand))

        # 2. Server level: arbitrate demands, choose DVFS, grant shares.
        result = ControlStepResult()
        for server in dc.active_servers():
            hosted = dc.vms_on(server.server_id)
            if not hosted:
                # Empty active server idles at its lowest frequency.
                server.set_frequency(server.spec.cpu.min_freq_ghz)
                continue
            demands = {vm.vm_id: vm.demand_ghz for vm in hosted}
            arb = self.arbitrator.arbitrate(server, demands)
            result.arbitration[server.server_id] = arb
            if arb.overloaded:
                result.overloaded_servers.append(server.server_id)
            for vm in hosted:
                vm.allocation_ghz = arb.allocations_ghz[vm.vm_id]

        # 3. Feed granted allocations back to controllers and plants.
        for app_id in measurements:
            app = dc.applications[app_id]
            granted = np.asarray(
                [dc.vms[vm_id].allocation_ghz for vm_id in app.vm_ids]
            )
            result.granted_ghz[app_id] = granted
            self.controllers[app_id].notify_allocation(granted)
            if app.plant is not None:
                app.plant.set_allocations(granted)
        return result

    def optimize(self, time_s: float = 0.0) -> PlacementPlan:
        """One optimizer invocation: snapshot, plan, apply."""
        tel = get_telemetry()
        problem = snapshot_datacenter(self.dc)
        with tel.span("optimizer.invoke", time_s=time_s) as sp:
            plan = self.optimizer(problem)
            sp.annotate(moves=plan.n_moves, wake=len(plan.wake), sleep=len(plan.sleep))
        apply_plan(self.dc, plan, time_s=time_s)
        logger.info(
            "optimizer t=%.1fs: %d moves, wake %d, sleep %d, %d active servers",
            time_s, plan.n_moves, len(plan.wake), len(plan.sleep),
            len(self.dc.active_servers()),
        )
        if tel.enabled:
            tel.count("optimizer.invocations")
            tel.count("optimizer.migrations", plan.n_moves)
            tel.event(
                "optimizer_invocation",
                time_s=time_s,
                moves=plan.n_moves,
                wake=len(plan.wake),
                sleep=len(plan.sleep),
                unplaced=len(plan.unplaced),
                active_servers=len(self.dc.active_servers()),
                info=dict(plan.info),
            )
            for mig in plan.migrations:
                tel.event(
                    "migration",
                    time_s=time_s,
                    vm=mig.vm_id,
                    source=mig.source_id,
                    target=mig.target_id,
                )
            for sid in plan.wake:
                tel.event("server_power", time_s=time_s, server=sid, state="on")
            for sid in plan.sleep:
                tel.event("server_power", time_s=time_s, server=sid, state="off")
        return plan
