"""The integrated two-level power management solution (paper Fig. 1).

``PowerManager`` wires together, over one :class:`~repro.cluster.datacenter.DataCenter`:

* one :class:`~repro.core.controller.ResponseTimeController` per
  application (short time scale — every control period);
* one :class:`~repro.core.arbitrator.CPUResourceArbitrator` pass per
  active server (same period: DVFS + share allocation);
* one data-center-level optimizer invocation (long time scale —
  IPAC by default, pluggable for baselines such as pMapper).
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional

import numpy as np

from repro.cluster.datacenter import DataCenter
from repro.core.arbitrator import ArbitrationResult, CPUResourceArbitrator
from repro.core.controller.response_time_controller import ResponseTimeController
from repro.core.fleet import FleetControlStep
from repro.core.optimizer.ipac import IPACConfig, ipac
from repro.core.optimizer.pac import PACConfig, pac
from repro.core.optimizer.types import (
    ApplyReport,
    PlacementPlan,
    PlacementProblem,
    apply_plan,
    snapshot_datacenter,
)
from repro.obs import get_telemetry
from repro.util.validation import check_positive

__all__ = ["PowerManagerConfig", "ControlStepResult", "PowerManager"]

logger = logging.getLogger(__name__)

Optimizer = Callable[[PlacementProblem], PlacementPlan]


@dataclass(frozen=True)
class PowerManagerConfig:
    """Timing and arbitration settings of the integrated manager.

    The paper's separation of time scales: "the response time controller
    is invoked on a small time scale (several seconds) ... while the
    power optimizer is invoked on a longer time scale (hours to days)".
    """

    control_period_s: float = 15.0
    optimizer_period_s: float = 4 * 3600.0
    arbitrator_headroom: float = 0.95

    def __post_init__(self):
        check_positive("control_period_s", self.control_period_s)
        check_positive("optimizer_period_s", self.optimizer_period_s)
        if self.optimizer_period_s < self.control_period_s:
            raise ValueError(
                "optimizer_period_s must be >= control_period_s "
                f"({self.optimizer_period_s} < {self.control_period_s})"
            )


@dataclass
class ControlStepResult:
    """Everything one control period produced.

    ``granted_ghz`` maps app_id -> per-tier allocations actually granted
    (post-arbitration); ``arbitration`` maps server_id -> its result;
    ``overloaded_servers`` lists hosts whose demand exceeded capacity.
    """

    granted_ghz: Dict[str, np.ndarray] = field(default_factory=dict)
    arbitration: Dict[str, ArbitrationResult] = field(default_factory=dict)
    overloaded_servers: List[str] = field(default_factory=list)


class PowerManager:
    """Coordinates controllers, arbitrators, and the optimizer.

    ``control_mode`` selects the application-level control path:
    ``"fleet"`` (default, the production path) batches every app's
    sysid/MPC through the grouped kernels
    (:class:`repro.core.fleet.FleetControlStep` —
    :func:`~repro.sysid.rls.rls_update_batch` +
    :func:`~repro.control.mpc_core.solve_mpc_batch`); ``"scalar"``
    runs the historical per-app loop.  The two are allclose-equivalent
    (stacked multi-RHS LAPACK reorders floating-point sums), not
    bit-identical — golden-hash reproductions pin ``"scalar"``.
    """

    def __init__(
        self,
        dc: DataCenter,
        config: PowerManagerConfig | None = None,
        optimizer: Optional[Optimizer] = None,
        control_mode: str = "fleet",
    ):
        if control_mode not in ("fleet", "scalar"):
            raise ValueError(
                f"control_mode must be 'fleet' or 'scalar', got {control_mode!r}"
            )
        self.dc = dc
        self.config = config or PowerManagerConfig()
        self.optimizer: Optimizer = optimizer or (lambda p: ipac(p, IPACConfig()))
        self.arbitrator = CPUResourceArbitrator(self.config.arbitrator_headroom)
        self.controllers: Dict[str, ResponseTimeController] = {}
        self.control_mode = control_mode
        # Live view over self.controllers: registrations are picked up.
        self._fleet = FleetControlStep(self.controllers)
        #: Grouping stats of the most recent fleet period (telemetry).
        self.last_fleet_stats: Optional[Dict[str, object]] = None

    def register_controller(self, app_id: str, controller: ResponseTimeController) -> None:
        """Attach the response-time controller for a registered app."""
        app = self.dc.applications.get(app_id)
        if app is None:
            raise KeyError(f"unknown application id {app_id!r}")
        if controller.model.n_inputs != app.n_tiers:
            raise ValueError(
                f"controller has {controller.model.n_inputs} inputs but "
                f"{app_id} has {app.n_tiers} tiers"
            )
        self.controllers[app_id] = controller

    def control_step(
        self,
        measurements: Mapping[str, float],
        used_ghz: Optional[Mapping[str, "np.ndarray"]] = None,
        time_s: float = float("nan"),
    ) -> ControlStepResult:
        """Run one control period across all applications and servers.

        ``measurements`` maps app_id -> measured 90-percentile response
        time (ms; NaN allowed); ``used_ghz`` optionally maps app_id ->
        measured per-tier CPU consumption (feeds each controller's
        utilization-band guard).  Updates VM demands and allocations in
        the data center, applies DVFS, and feeds the granted (possibly
        rationed) allocations back to each controller (anti-windup).
        ``time_s`` stamps the emitted telemetry (simulated seconds); it
        does not affect control.
        """
        tel = get_telemetry()
        if not tel.enabled:
            return self._control_step(measurements, used_ghz)
        with tel.span(
            "manager.control_step",
            apps=len(measurements),
            control_mode=self.control_mode,
        ):
            result = self._control_step(measurements, used_ghz)
        tel.count("manager.control_steps")
        if result.overloaded_servers:
            logger.warning(
                "control step t=%.1fs: overloaded servers %s",
                time_s, result.overloaded_servers,
            )
        tel.event(
            "control_period",
            time_s=time_s,
            apps={
                app_id: {
                    "rt_ms": float(measurements[app_id]),
                    "setpoint_ms": self.controllers[app_id].config.setpoint_ms,
                    "granted_ghz": [float(g) for g in granted],
                    "demand_ghz": [
                        float(self.dc.vms[vm_id].demand_ghz)
                        for vm_id in self.dc.applications[app_id].vm_ids
                    ],
                }
                for app_id, granted in result.granted_ghz.items()
            },
            overloaded=list(result.overloaded_servers),
            freqs_ghz={
                sid: arb.freq_ghz for sid, arb in result.arbitration.items()
            },
        )
        return result

    def _control_step(
        self,
        measurements: Mapping[str, float],
        used_ghz: Optional[Mapping[str, "np.ndarray"]] = None,
    ) -> ControlStepResult:
        """The three-phase control period, factored out of the traced entry."""
        dc = self.dc
        # 0. Validate the whole batch before mutating anything: a missing
        # controller discovered mid-loop would otherwise leave the data
        # center half-updated (some apps' VM demands written, others not).
        unregistered = sorted(a for a in measurements if a not in self.controllers)
        if unregistered:
            raise KeyError(
                f"no controller registered for {unregistered!r}; "
                "control step aborted before any demand was written"
            )
        # 1. Application level: controllers emit new per-VM demands —
        # fleet-batched through the grouped kernels (production path)
        # or the scalar reference loop.
        if self.control_mode == "fleet":
            demands_by_app = self._fleet_demands(measurements, used_ghz)
            for app_id, demands in demands_by_app.items():
                app = dc.applications[app_id]
                for vm_id, demand in zip(app.vm_ids, demands):
                    dc.vms[vm_id].set_demand(float(demand))
        else:
            for app_id, rt_ms in measurements.items():
                controller = self.controllers[app_id]
                usage = used_ghz.get(app_id) if used_ghz is not None else None
                demands = controller.update(rt_ms, used_ghz=usage)
                app = dc.applications[app_id]
                for vm_id, demand in zip(app.vm_ids, demands):
                    dc.vms[vm_id].set_demand(float(demand))

        # 2. Server level: arbitrate demands, choose DVFS, grant shares.
        result = ControlStepResult()
        for server in dc.active_servers():
            hosted = dc.vms_on(server.server_id)
            if not hosted:
                # Empty active server idles at its lowest frequency.
                server.set_frequency(server.spec.cpu.min_freq_ghz)
                continue
            demands = {vm.vm_id: vm.demand_ghz for vm in hosted}
            arb = self.arbitrator.arbitrate(server, demands)
            result.arbitration[server.server_id] = arb
            if arb.overloaded:
                result.overloaded_servers.append(server.server_id)
            for vm in hosted:
                vm.allocation_ghz = arb.allocations_ghz[vm.vm_id]

        # 3. Feed granted allocations back to controllers and plants.
        # (unchanged across modes: anti-windup and plant wiring are
        # identical whether demands came from the fleet or the loop)
        for app_id in measurements:
            app = dc.applications[app_id]
            granted = np.asarray(
                [dc.vms[vm_id].allocation_ghz for vm_id in app.vm_ids]
            )
            result.granted_ghz[app_id] = granted
            self.controllers[app_id].notify_allocation(granted)
            if app.plant is not None:
                app.plant.set_allocations(granted)
        return result

    def _fleet_demands(
        self,
        measurements: Mapping[str, float],
        used_ghz: Optional[Mapping[str, "np.ndarray"]] = None,
    ) -> Dict[str, np.ndarray]:
        """Fleet-batched phase 1 plus its grouping telemetry.

        The numerics are one :meth:`FleetControlStep.run` call in both
        branches; telemetry only observes.  Emits the
        ``controller.batch_groups`` counter, the
        ``controller.batch_size`` histogram (one observation per MPC
        group), and a ``manager.fleet_control`` span annotated with the
        per-group sizes so ``repro-obs profile`` can show how well the
        fleet grouped.
        """
        tel = get_telemetry()
        if not tel.enabled:
            demands, self.last_fleet_stats = self._fleet.run(
                measurements, used_ghz
            )
            return demands
        with tel.span(
            "manager.fleet_control", apps=len(measurements)
        ) as sp:
            demands, stats = self._fleet.run(measurements, used_ghz)
            groups = list(stats.get("mpc_groups", []))
            sp.annotate(
                batch_groups=len(groups),
                batch_group_sizes=groups,
                rls_batched=stats.get("rls_batched", 0),
                held=stats.get("held", 0),
            )
        self.last_fleet_stats = stats
        tel.count("controller.batch_groups", len(groups))
        for size in groups:
            tel.observe("controller.batch_size", float(size))
        return demands

    def optimize(self, time_s: float = 0.0) -> PlacementPlan:
        """One optimizer invocation: snapshot, plan, apply."""
        tel = get_telemetry()
        problem = snapshot_datacenter(self.dc)
        with tel.span("optimizer.invoke", time_s=time_s) as sp:
            plan = self.optimizer(problem)
            sp.annotate(moves=plan.n_moves, wake=len(plan.wake), sleep=len(plan.sleep))
        report = apply_plan(self.dc, plan, time_s=time_s)
        logger.info(
            "optimizer t=%.1fs: %d moves (%d completed), wake %d, sleep %d, "
            "%d active servers",
            time_s, plan.n_moves, report.n_completed, len(plan.wake),
            len(plan.sleep), len(self.dc.active_servers()),
        )
        self._emit_apply_telemetry(plan, report, time_s)
        return plan

    def _emit_apply_telemetry(
        self, plan: PlacementPlan, report: ApplyReport, time_s: float
    ) -> None:
        """Events + counters for one applied plan (no-op when disabled)."""
        tel = get_telemetry()
        if not tel.enabled:
            return
        tel.count("optimizer.invocations")
        tel.count("optimizer.migrations", report.n_completed)
        if report.failed_migrations:
            tel.count("optimizer.migrations_failed", len(report.failed_migrations))
        tel.event(
            "optimizer_invocation",
            time_s=time_s,
            moves=plan.n_moves,
            completed=report.n_completed,
            failed=len(report.failed_migrations),
            wake=len(plan.wake),
            sleep=len(plan.sleep),
            unplaced=len(plan.unplaced),
            active_servers=len(self.dc.active_servers()),
            migration_seconds=report.total_duration_s,
            migration_mb=report.total_bytes_moved_mb,
            info=dict(plan.info),
        )
        for rec in report.records:
            tel.event(
                "migration",
                time_s=rec.time_s,
                vm=rec.vm_id,
                source=rec.source_id,
                target=rec.target_id,
                duration_s=rec.duration_s,
                bytes_moved_mb=rec.bytes_moved_mb,
            )
        for mig in report.failed_migrations:
            tel.event(
                "migration_failed",
                time_s=time_s,
                vm=mig.vm_id,
                source=mig.source_id,
                target=mig.target_id,
            )
        for sid in plan.wake:
            if sid not in report.skipped_wake:
                tel.event("server_power", time_s=time_s, server=sid, state="on")
        for sid in plan.sleep:
            if sid not in report.skipped_sleep:
                tel.event("server_power", time_s=time_s, server=sid, state="off")

    def emergency_evacuate(
        self, failed_server_id: str, vm_ids: List[str], time_s: float = 0.0
    ) -> PlacementPlan:
        """Fast-path re-placement of VMs evicted by a server crash.

        Runs immediately (between control periods) instead of waiting
        for the next optimizer invocation: the evicted VMs are packed
        onto the surviving *active* servers via Minimum Slack (PAC on
        the active subset); anything that does not fit is placed in a
        second pass over the full problem, which may wake sleeping
        servers.  The crashed server itself is already excluded from the
        snapshot by :func:`snapshot_datacenter`.
        """
        tel = get_telemetry()
        vm_ids = sorted(vm_ids)
        placed: List[str] = []
        woke: List[str] = []
        with tel.span(
            "manager.evacuate", server=failed_server_id, vms=len(vm_ids)
        ) as sp:
            pac_cfg = PACConfig()
            problem = snapshot_datacenter(self.dc)
            active = tuple(s for s in problem.servers if s.active)
            stragglers = list(vm_ids)
            plan = PlacementPlan(final_mapping=dict(problem.mapping), unplaced=stragglers)
            if active:
                sub = PlacementProblem(active, problem.vms, dict(problem.mapping))
                plan = pac(sub, vm_ids, pac_cfg)
                plan.sleep = []  # evacuation never powers servers down
                report = apply_plan(self.dc, plan, time_s=time_s)
                placed.extend(report.placed)
                stragglers = list(plan.unplaced)
            if stragglers:
                # Survivors cannot absorb everything: recruit sleepers.
                problem = snapshot_datacenter(self.dc)
                plan = pac(problem, stragglers, pac_cfg)
                plan.sleep = []
                report = apply_plan(self.dc, plan, time_s=time_s)
                placed.extend(report.placed)
                woke.extend(s for s in plan.wake if s not in report.skipped_wake)
            sp.annotate(placed=len(placed), unplaced=len(plan.unplaced))
        logger.warning(
            "emergency evacuation of %s t=%.1fs: %d VMs, %d re-placed, %d unplaced",
            failed_server_id, time_s, len(vm_ids), len(placed), len(plan.unplaced),
        )
        if tel.enabled:
            tel.count("manager.evacuations")
            tel.count("manager.evacuated_vms", len(vm_ids))
            tel.event(
                "evacuation",
                time_s=time_s,
                server=failed_server_id,
                vms=vm_ids,
                placed=placed,
                unplaced=list(plan.unplaced),
                woke=woke,
            )
        return plan
