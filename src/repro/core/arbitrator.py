"""Server-level CPU resource arbitrator with DVFS (paper §III, §IV-B).

"A server-level CPU resource arbitrator then collects the CPU resource
demands of all VMs hosted on the server, allocates the CPU resource to
the VMs, and uses DVFS to save power, if the server has more CPU
resources than the VMs require."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

from repro.cluster.server import Server
from repro.obs import get_telemetry
from repro.util.validation import check_in_range

__all__ = ["ArbitrationResult", "CPUResourceArbitrator"]


@dataclass(frozen=True)
class ArbitrationResult:
    """Outcome of one arbitration round on one server.

    Attributes
    ----------
    freq_ghz:
        The DVFS frequency chosen (lowest level covering total demand).
    allocations_ghz:
        Granted GHz per VM.  Equal to demands when the server has room;
        proportionally rationed when the server is overloaded even at
        maximum frequency.
    overloaded:
        True when total demand exceeded the server's maximum capacity —
        the signal the data-center optimizer uses to build its migration
        list.
    total_demand_ghz:
        The aggregate demand the VMs requested.
    """

    freq_ghz: float
    allocations_ghz: Dict[str, float]
    overloaded: bool
    total_demand_ghz: float


class CPUResourceArbitrator:
    """Per-server demand aggregation, DVFS selection, share allocation.

    Parameters
    ----------
    headroom:
        Fraction of capacity kept free when choosing the frequency: the
        chosen level satisfies ``total_demand <= capacity * headroom``.
        1.0 packs exactly; 0.9 leaves 10% slack for demand jitter
        between control periods.
    """

    def __init__(self, headroom: float = 0.95):
        self.headroom = check_in_range("headroom", headroom, 0.1, 1.0)

    def arbitrate(self, server: Server, demands_ghz: Mapping[str, float]) -> ArbitrationResult:
        """Pick the server frequency and per-VM grants for one period.

        Side effects: sets ``server.freq_ghz`` via DVFS.  Returns the
        grants; the caller applies them to VMs / plants.
        """
        if not server.active:
            raise ValueError(f"cannot arbitrate sleeping server {server.server_id}")
        for vm_id, demand in demands_ghz.items():
            if demand < 0:
                raise ValueError(f"negative demand for {vm_id}: {demand}")
        tel = get_telemetry()
        if not tel.enabled:
            return self._arbitrate(server, demands_ghz)
        with tel.span("arbitrator.pass", server=server.server_id) as sp:
            result = self._arbitrate(server, demands_ghz)
            sp.annotate(
                freq_ghz=result.freq_ghz,
                total_demand_ghz=result.total_demand_ghz,
                overloaded=result.overloaded,
            )
        tel.count("arbitrator.passes")
        if result.overloaded:
            tel.count("arbitrator.overloads")
        return result

    def _arbitrate(self, server: Server, demands_ghz: Mapping[str, float]) -> ArbitrationResult:
        """The DVFS + share selection, factored out of the traced entry."""
        total = float(sum(demands_ghz.values()))
        cpu = server.spec.cpu
        # Lowest DVFS level whose *effective* capacity covers demand plus
        # headroom (a thermal throttle scales every level down, so the
        # nominal level that covers the demand is correspondingly higher).
        needed = total / self.headroom if total > 0 else 0.0
        freq = cpu.lowest_level_for(needed / server.capacity_fraction)
        server.set_frequency(freq)
        capacity = server.capacity_at(freq)
        overloaded = total > server.max_capacity_ghz * self.headroom + 1e-9
        if total <= capacity + 1e-12 or total == 0.0:
            allocations = {vm_id: float(d) for vm_id, d in demands_ghz.items()}
        else:
            # Overloaded even at the highest level: ration proportionally.
            scale = capacity / total
            allocations = {vm_id: float(d) * scale for vm_id, d in demands_ghz.items()}
        return ArbitrationResult(
            freq_ghz=freq,
            allocations_ghz=allocations,
            overloaded=overloaded,
            total_demand_ghz=total,
        )
