"""Application-level response time controller (paper §IV)."""

from repro.core.controller.adaptive import AdaptiveResponseTimeController
from repro.core.controller.analysis import TrackingMetrics, settling_time_s, tracking_metrics, violation_ratio
from repro.core.controller.reference import exponential_reference
from repro.core.controller.response_time_controller import (
    ControllerConfig,
    ResponseTimeController,
)

__all__ = [
    "AdaptiveResponseTimeController",
    "TrackingMetrics",
    "settling_time_s",
    "tracking_metrics",
    "violation_ratio",
    "exponential_reference",
    "ControllerConfig",
    "ResponseTimeController",
]
