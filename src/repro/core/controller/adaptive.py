"""Response-time controller with *supervised* online model adaptation.

Combines the paper's MPC controller with recursive least squares
(:mod:`repro.sysid.rls`) — but adapts in shadow.  Closed-loop
identification of a queueing plant is hazardous: steady operation is
unexciting, and overload transients produce saturated, backlog-dominated
samples that poison a local-linear fit.  A naively self-updating
controller can talk itself into reversing its own control direction.

The supervision scheme keeps the loop safe:

* the RLS **candidate** model learns only from *clean* samples — the
  input moved, the measurement was not clamped, and the output history
  is inside the linear trust region;
* every period, both the offline **base** model and the candidate are
  scored on their one-step prediction of the latest measurement
  (exponentially-weighted squared error);
* the controller *uses* the candidate only while its score beats the
  base's by a margin; otherwise it falls back to the base model — so in
  the worst case the adaptive controller degrades exactly to the static
  controller the paper evaluates.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.control.arx import ARXModel
from repro.control.mpc_core import MPCController
from repro.control.stability import is_stable_arx
from repro.core.controller.response_time_controller import (
    ControllerConfig,
    ResponseTimeController,
)
from repro.sysid.rls import RecursiveARXEstimator

__all__ = ["AdaptiveResponseTimeController"]


class AdaptiveResponseTimeController(ResponseTimeController):
    """A :class:`ResponseTimeController` with supervised adaptation.

    Parameters mirror the base class, plus:

    forgetting, relative_uncertainty, max_relative_step:
        RLS knobs (see :class:`~repro.sysid.rls.RecursiveARXEstimator`).
    min_input_change_ghz:
        Excitation gate: RLS consumes a sample only when some input
        moved at least this much since the previous period.
    error_forgetting:
        EWMA factor of the model-scoring errors (0.9 ≈ a ~10-sample
        window).
    switch_margin:
        The candidate takes over when its EWMA squared error is below
        ``switch_margin`` × the base's (0.8 = must be 20% better).
    min_scored_samples:
        Both models must have been scored this many times before a
        switch is considered.
    """

    def __init__(
        self,
        model: ARXModel,
        config: ControllerConfig,
        c_min: Sequence[float],
        c_max: Sequence[float],
        initial_alloc_ghz: Sequence[float],
        forgetting: float = 0.98,
        relative_uncertainty: float = 0.3,
        max_relative_step: float = 0.3,
        min_input_change_ghz: float = 0.05,
        error_forgetting: float = 0.9,
        switch_margin: float = 0.8,
        min_scored_samples: int = 8,
    ):
        super().__init__(model, config, c_min, c_max, initial_alloc_ghz)
        if not 0.0 < error_forgetting < 1.0:
            raise ValueError(f"error_forgetting must be in (0,1), got {error_forgetting}")
        if not 0.0 < switch_margin <= 1.0:
            raise ValueError(f"switch_margin must be in (0,1], got {switch_margin}")
        if min_input_change_ghz < 0:
            raise ValueError(
                f"min_input_change_ghz must be >= 0, got {min_input_change_ghz}"
            )
        self.base_model = model
        self.estimator = RecursiveARXEstimator(
            model,
            forgetting=forgetting,
            relative_uncertainty=relative_uncertainty,
            max_relative_step=max_relative_step,
        )
        self._min_input_change = float(min_input_change_ghz)
        self._error_forgetting = float(error_forgetting)
        self._switch_margin = float(switch_margin)
        self._min_scored = int(min_scored_samples)
        self._score_base: Optional[float] = None
        self._score_cand: Optional[float] = None
        self._scored = 0
        self._pred_base: Optional[float] = None
        self._pred_cand: Optional[float] = None
        self._candidate_model: ARXModel = self.estimator.model
        self.using_candidate = False
        self.candidate_periods = 0
        self.rls_samples = 0

    # -- adaptation hooks (composed by the base class's update(), and
    # -- batched across controllers by the fleet control step) ----------

    def begin_adaptation(self, measured_rt_ms: float) -> Optional[tuple]:
        """Score last period's predictions, gate this period's RLS sample."""
        cfg = self.config
        clean = (
            np.isfinite(measured_rt_ms)
            and 0.0 < measured_rt_ms < cfg.measurement_limit_ms
        )

        # 1. Score last period's predictions against this measurement.
        if clean and self._pred_base is not None and self._pred_cand is not None:
            lam = self._error_forgetting
            err_b = (measured_rt_ms - self._pred_base) ** 2
            err_c = (measured_rt_ms - self._pred_cand) ** 2
            self._score_base = err_b if self._score_base is None else (
                lam * self._score_base + (1 - lam) * err_b
            )
            self._score_cand = err_c if self._score_cand is None else (
                lam * self._score_cand + (1 - lam) * err_c
            )
            self._scored += 1

        # 2. Shadow RLS gate: clean, excited samples whose output
        #    history is itself unclamped (inside the linear trust region).
        c_hist = np.asarray(self._c_hist)
        excited = (
            c_hist.shape[0] < 2
            or float(np.max(np.abs(c_hist[0] - c_hist[1]))) >= self._min_input_change
        )
        history_clean = all(t < cfg.measurement_limit_ms for t in self._t_hist)
        if clean and excited and history_clean:
            self.rls_samples += 1
            return (float(measured_rt_ms), list(self._t_hist), c_hist)
        return None

    def _consume_rls_sample(self, sample: tuple) -> None:
        measured_t, t_hist, c_hist = sample
        self.estimator.update(measured_t, t_hist, c_hist)

    def finish_adaptation(self) -> None:
        """Supervision: pick the active model, rebuilding the MPC on swap."""
        cfg = self.config
        candidate = self.estimator.model
        self._candidate_model = candidate
        use_candidate = (
            self._scored >= self._min_scored
            and self._score_base is not None
            and self._score_cand is not None
            and self._score_cand < self._switch_margin * self._score_base
            and is_stable_arx(candidate)
        )
        active = candidate if use_candidate else self.base_model
        if (active is not self.model) or (use_candidate != self.using_candidate):
            self.model = active
            previous = self._mpc
            self._mpc = MPCController(active, cfg.mpc)
            # Constraint geometry is unchanged across a model swap, so
            # the previous period's active set remains a useful seed.
            self._mpc.adopt_warm_state(previous)
        self.using_candidate = use_candidate
        if use_candidate:
            self.candidate_periods += 1

    def after_update(self) -> None:
        """Stage both models' one-step predictions of the *next*
        measurement (histories now end at k for outputs, k+1 for
        inputs — exactly one_step's expected layout)."""
        t_hist = list(self._t_hist)
        c_hist_next = np.asarray(self._c_hist)
        try:
            self._pred_base = float(self.base_model.one_step(t_hist, c_hist_next))
            self._pred_cand = float(
                self._candidate_model.one_step(t_hist, c_hist_next)
            )
        except ValueError:
            self._pred_base = None
            self._pred_cand = None
