"""Closed-loop performance metrics on recorded response-time series.

Quantifies what the paper's figures show qualitatively: settling time
after a disturbance, overshoot, steady-state tracking error, and SLA
violation ratios — shared by the MPC-tuning ablation, tests, and any
user evaluating their own tuning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.util.validation import check_in_range, check_positive

__all__ = ["TrackingMetrics", "tracking_metrics", "settling_time_s", "violation_ratio"]


@dataclass(frozen=True)
class TrackingMetrics:
    """Summary of one closed-loop run against a set point.

    ``settling_s`` is NaN when the run never settles; ``overshoot_frac``
    is the worst normalized deviation *after* first reaching the band.
    """

    setpoint: float
    steady_state_mean: float
    steady_state_std: float
    steady_state_error_frac: float
    settling_s: float
    overshoot_frac: float
    violation_ratio: float


def settling_time_s(
    values: Sequence[float],
    setpoint: float,
    period_s: float,
    band: float = 0.25,
    hold_fraction: float = 0.8,
) -> float:
    """First time after which the series stays mostly inside the band.

    The series settles at step ``k`` when at least ``hold_fraction`` of
    all later samples lie within ``band`` (relative) of the set point.
    Returns NaN when no such step exists.
    """
    check_positive("period_s", period_s)
    check_in_range("band", band, 0.0, 1.0)
    check_in_range("hold_fraction", hold_fraction, 0.0, 1.0)
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return float("nan")
    inside = np.abs(arr - setpoint) <= band * abs(setpoint)
    for k in range(arr.size):
        tail = inside[k:]
        if tail.mean() >= hold_fraction:
            return k * period_s
    return float("nan")


def violation_ratio(
    values: Sequence[float], setpoint: float, tolerance: float = 0.0
) -> float:
    """Fraction of samples exceeding the set point by more than *tolerance*.

    The SLA view: a response time below the set point is compliant, so
    only upward excursions count.  NaN samples (no completions) count as
    violations — a starved application is certainly not meeting its SLA.
    """
    check_in_range("tolerance", tolerance, 0.0, 10.0)
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return float("nan")
    limit = setpoint * (1.0 + tolerance)
    violated = ~(arr <= limit)  # NaN compares False -> counted as violated
    return float(violated.mean())


def tracking_metrics(
    values: Sequence[float],
    setpoint: float,
    period_s: float,
    steady_after: Optional[int] = None,
    band: float = 0.25,
) -> TrackingMetrics:
    """All metrics in one pass.

    ``steady_after`` is the sample index where the steady-state window
    starts (default: the second half of the series).
    """
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("values must be non-empty")
    if steady_after is None:
        steady_after = arr.size // 2
    if not 0 <= steady_after < arr.size:
        raise ValueError(f"steady_after out of range: {steady_after}")
    steady = arr[steady_after:]
    finite = steady[np.isfinite(steady)]
    mean = float(finite.mean()) if finite.size else float("nan")
    std = float(finite.std()) if finite.size else float("nan")
    settle = settling_time_s(arr, setpoint, period_s, band=band)

    overshoot = float("nan")
    inside = np.abs(arr - setpoint) <= band * abs(setpoint)
    first_inside = int(np.argmax(inside)) if inside.any() else None
    if first_inside is not None:
        after = arr[first_inside:]
        after = after[np.isfinite(after)]
        if after.size:
            overshoot = float(np.max(np.abs(after - setpoint)) / abs(setpoint))

    return TrackingMetrics(
        setpoint=float(setpoint),
        steady_state_mean=mean,
        steady_state_std=std,
        steady_state_error_frac=abs(mean - setpoint) / abs(setpoint)
        if np.isfinite(mean) else float("nan"),
        settling_s=settle,
        overshoot_frac=overshoot,
        violation_ratio=violation_ratio(arr, setpoint, tolerance=band),
    )
