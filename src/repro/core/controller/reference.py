"""The exponential reference trajectory (paper Eq. 3).

``ref(k+i|k) = Ts - exp(-i*T/Tref) * (Ts - t(k))``

The reference starts at the current measurement and approaches the set
point with time constant ``Tref``, so that a controller which tracks it
perfectly makes the closed loop behave like a first-order linear system.
A smaller ``Tref`` converges faster but risks overshoot (paper §IV-B).
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_positive

__all__ = ["exponential_reference"]


def exponential_reference(
    t_current_ms: float,
    setpoint_ms: float,
    horizon: int,
    period_s: float,
    time_constant_s: float,
) -> np.ndarray:
    """Reference trajectory ref(k+i|k) for i = 1..horizon (ms)."""
    if horizon < 1:
        raise ValueError(f"horizon must be >= 1, got {horizon}")
    check_positive("period_s", period_s)
    check_positive("time_constant_s", time_constant_s)
    i = np.arange(1, horizon + 1, dtype=float)
    decay = np.exp(-i * period_s / time_constant_s)
    return setpoint_ms - decay * (setpoint_ms - float(t_current_ms))
