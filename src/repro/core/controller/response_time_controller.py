"""The paper's application-level response time controller (§IV).

One controller per multi-tier application.  Every control period it
receives the measured 90-percentile response time, solves the MPC
problem of Eq. 2-4 over the identified ARX model, and emits the CPU
*demands* (GHz per VM) that the server-level arbitrators then satisfy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.control.arx import ARXModel
from repro.control.mpc_core import MPCConfig, MPCController, MPCSolution
from repro.core.controller.reference import exponential_reference
from repro.obs import get_telemetry
from repro.util.validation import check_positive

__all__ = ["ControllerConfig", "PendingUpdate", "ResponseTimeController"]


@dataclass(frozen=True)
class ControllerConfig:
    """Tuning of one response-time controller.

    Attributes
    ----------
    setpoint_ms:
        Ts — the 90-percentile response-time SLA target.
    period_s:
        T — the control period (seconds; the paper uses "several
        seconds" to react to short-term workload variation).
    ref_time_constant_s:
        Tref of the exponential reference trajectory (Eq. 3).
    mpc:
        Horizons and weights of the underlying MPC (Eq. 2).
    measurement_limit_ms:
        Measured response times are clamped to this value before being
        fed to the (local, linear) model — an overloaded plant can
        return arbitrarily large percentiles that would otherwise
        catapult the linear prediction far outside its valid region.
    bias_gain:
        Filter gain of the output-disturbance estimate (offset-free
        MPC).  Each period the estimate moves this fraction of the way
        toward the latest innovation ``t(k) - t̂(k|k-1)``; 0 disables
        the correction.  This keeps tracking offset-free when the plant
        drifts away from the identified model — the robustness the
        paper demonstrates in its Figs. 4-5.
    util_band:
        Optional per-tier utilization guard ``(lo, hi)``.  When the
        caller supplies measured per-tier CPU usage, each tier's
        allocation is dynamically bounded to keep its utilization inside
        the band: at least ``used/hi`` (no tier starves at 100%
        utilization) and at most ``used/lo + util_band_headroom_ghz``
        (no tier hoards idle cycles).  The identified model is a *local*
        linearization whose per-tier gains are badly wrong far from the
        operating point; the band keeps the MIMO optimizer inside the
        region where those gains are meaningful.  ``None`` disables.
    util_band_headroom_ghz:
        Additive headroom on the band's upper allocation cap, so a tier
        can grow out of a near-idle state.
    missing_policy:
        What a non-finite (NaN/inf) measurement means.
        ``"pessimistic"`` (default, the original behaviour): treat it
        as total starvation — substitute the clamp limit so allocation
        is pushed up.  ``"hold"``: treat it as a *lost sample* (sensor
        dropout, monitoring outage) — keep the last demands unchanged
        and skip the model update, for up to ``max_hold_periods``
        consecutive losses, after which the controller falls back to
        the pessimistic substitution (a long outage is
        indistinguishable from starvation).  Held periods increment the
        ``controller.held_updates`` telemetry counter; every non-finite
        sample increments ``controller.missing_measurements``.
    max_hold_periods:
        Consecutive lost samples tolerated under ``missing_policy=
        "hold"`` before escalating to the pessimistic substitution.
    """

    setpoint_ms: float = 1000.0
    period_s: float = 15.0
    ref_time_constant_s: float = 15.0
    mpc: MPCConfig = field(default_factory=lambda: MPCConfig(
        prediction_horizon=8,
        control_horizon=2,
        q_weight=1.0,
        r_weight=1e5,
        delta_max=0.3,
        power_weight=200.0,
    ))
    measurement_limit_ms: float = 3000.0
    bias_gain: float = 0.3
    util_band: Optional[tuple] = (0.75, 0.985)
    util_band_headroom_ghz: float = 0.1
    missing_policy: str = "pessimistic"
    max_hold_periods: int = 3

    def __post_init__(self):
        if self.missing_policy not in ("pessimistic", "hold"):
            raise ValueError(
                f"missing_policy must be 'pessimistic' or 'hold', "
                f"got {self.missing_policy!r}"
            )
        if self.max_hold_periods < 1:
            raise ValueError(
                f"max_hold_periods must be >= 1, got {self.max_hold_periods}"
            )
        check_positive("setpoint_ms", self.setpoint_ms)
        check_positive("period_s", self.period_s)
        check_positive("ref_time_constant_s", self.ref_time_constant_s)
        check_positive("measurement_limit_ms", self.measurement_limit_ms)
        if not 0.0 <= self.bias_gain <= 1.0:
            raise ValueError(f"bias_gain must be in [0, 1], got {self.bias_gain}")
        if self.util_band is not None:
            lo, hi = self.util_band
            if not 0.0 < lo < hi <= 1.0:
                raise ValueError(f"util_band must satisfy 0 < lo < hi <= 1, got {self.util_band}")
        if self.util_band_headroom_ghz < 0:
            raise ValueError(
                f"util_band_headroom_ghz must be >= 0, got {self.util_band_headroom_ghz}"
            )


@dataclass
class PendingUpdate:
    """One controller's period, split at the MPC solve.

    Produced by :meth:`ResponseTimeController.prepare` and consumed by
    :meth:`ResponseTimeController.finish` — the seam the fleet control
    step (:class:`repro.core.fleet.FleetControlStep`) batches across:
    everything before the solve runs per controller, the solves
    themselves are grouped, and everything after fans back out.

    ``held`` short-circuits the period (missing-measurement hold):
    ``demands`` already carries the re-emitted allocations and there is
    nothing to solve.  Otherwise ``request`` holds the exact keyword
    arguments of :meth:`repro.control.mpc_core.MPCController.solve`, and
    ``lo``/``hi`` the effective bounds the finish step clips against.
    """

    held: bool
    demands: Optional[np.ndarray] = None
    request: Optional[dict] = None
    lo: Optional[np.ndarray] = None
    hi: Optional[np.ndarray] = None


class ResponseTimeController:
    """MIMO MPC response-time controller for one application.

    Parameters
    ----------
    model:
        Identified ARX response-time model (output ms, inputs GHz).
    config:
        Controller tuning.
    c_min, c_max:
        Per-VM allocation bounds (GHz) — actuator constraints.
    initial_alloc_ghz:
        Allocation assumed to be active when control starts.
    """

    def __init__(
        self,
        model: ARXModel,
        config: ControllerConfig,
        c_min: Sequence[float],
        c_max: Sequence[float],
        initial_alloc_ghz: Sequence[float],
    ):
        self.model = model
        self.config = config
        self.c_min = np.asarray(c_min, dtype=float)
        self.c_max = np.asarray(c_max, dtype=float)
        m = model.n_inputs
        if self.c_min.shape != (m,) or self.c_max.shape != (m,):
            raise ValueError(f"bounds must have length {m}")
        if np.any(self.c_min > self.c_max):
            raise ValueError("c_min must be <= c_max elementwise")
        init = np.clip(np.asarray(initial_alloc_ghz, dtype=float), self.c_min, self.c_max)
        if init.shape != (m,):
            raise ValueError(f"initial_alloc_ghz must have length {m}")
        self._mpc = MPCController(model, config.mpc)
        # Histories, most-recent-first, seeded at the assumed steady state.
        self._t_hist: List[float] = [config.setpoint_ms] * max(model.na, 1)
        self._c_hist: List[np.ndarray] = [init.copy() for _ in range(max(model.nb, 1))]
        self._last_valid_t = config.setpoint_ms
        self._bias = 0.0
        self._last_raw_prediction: Optional[float] = None
        self._consecutive_missing = 0
        self.held_updates = 0
        self.last_solution: Optional[MPCSolution] = None
        #: RLS estimator whose updates the fleet control step batches;
        #: ``None`` on the plain controller (only the adaptive subclass
        #: learns online).
        self.estimator = None

    @property
    def output_bias_ms(self) -> float:
        """Current output-disturbance (plant-model mismatch) estimate."""
        return self._bias

    @property
    def current_demand_ghz(self) -> np.ndarray:
        """Most recently emitted per-VM CPU demand (GHz)."""
        return self._c_hist[0].copy()

    def update(
        self, measured_rt_ms: float, used_ghz: Optional[Sequence[float]] = None
    ) -> np.ndarray:
        """One control-period step: consume t(k), emit c(k+1).

        ``used_ghz`` is the measured per-tier CPU actually consumed last
        period; when provided (and ``util_band`` is configured) it drives
        the dynamic per-tier allocation bounds.

        A non-finite measurement is handled by ``config.missing_policy``:
        replaced by the clamp limit — the most pessimistic in-range
        value, so the controller pushes allocation up instead of
        stalling — or (``"hold"``) the last demands are re-emitted
        unchanged for up to ``max_hold_periods`` consecutive losses
        before escalating to the pessimistic substitution.

        The body is a composition of the adaptation hooks and the
        :meth:`prepare` / :meth:`finish` halves in exactly the inline
        order the fleet control step reproduces across many controllers,
        so the scalar and batched paths share every line of per-period
        state handling.
        """
        sample = self.begin_adaptation(measured_rt_ms)
        if sample is not None:
            self._consume_rls_sample(sample)
        self.finish_adaptation()
        pending = self.prepare(measured_rt_ms, used_ghz=used_ghz)
        if pending.held:
            out = pending.demands
        else:
            solution = self._mpc.solve(**pending.request)
            out = self.finish(pending, solution)
        self.after_update()
        return out

    # -- adaptation hooks (no-ops on the non-adaptive controller) ------

    def begin_adaptation(self, measured_rt_ms: float) -> Optional[tuple]:
        """Pre-solve adaptation: score models, gate the RLS sample.

        Returns the ``(measured_t, t_hist, c_hist)`` sample the online
        estimator should consume this period, or ``None`` when there is
        nothing to learn (always, on this non-adaptive base class).  The
        fleet control step collects the returned samples across all
        controllers and feeds them to one
        :func:`repro.sysid.rls.rls_update_batch` call.
        """
        return None

    def _consume_rls_sample(self, sample: tuple) -> None:
        """Scalar-path estimator update for :meth:`begin_adaptation`'s
        sample; the fleet step replaces this with the batched kernel."""

    def finish_adaptation(self) -> None:
        """Post-estimate supervision (model selection); no-op here."""

    def after_update(self) -> None:
        """Post-period staging (e.g. one-step predictions); no-op here."""

    # -- the period split at the MPC solve -----------------------------

    def prepare(
        self, measured_rt_ms: float, used_ghz: Optional[Sequence[float]] = None
    ) -> PendingUpdate:
        """Everything before the MPC solve: measurement handling, bias
        innovation, history push, reference and effective bounds.

        Mutates the controller exactly as the historical inline
        :meth:`update` did up to the solve call, and returns either a
        held result or the solve request.
        """
        cfg = self.config
        if not np.isfinite(measured_rt_ms):
            self._consecutive_missing += 1
            get_telemetry().count("controller.missing_measurements")
            if (
                cfg.missing_policy == "hold"
                and self._consecutive_missing <= cfg.max_hold_periods
            ):
                # Lost sample: no new information, keep the last demands
                # and leave model histories / bias untouched.
                self.held_updates += 1
                get_telemetry().count("controller.held_updates")
                return PendingUpdate(held=True, demands=self._c_hist[0].copy())
            t_k = cfg.measurement_limit_ms
        else:
            self._consecutive_missing = 0
            t_k = float(np.clip(measured_rt_ms, 0.0, cfg.measurement_limit_ms))
            self._last_valid_t = t_k
        # Offset-free correction: filter the innovation between what the
        # raw model predicted for this period and what was measured.
        if self._last_raw_prediction is not None and cfg.bias_gain > 0.0:
            innovation = t_k - self._last_raw_prediction
            self._bias += cfg.bias_gain * (innovation - self._bias)
            # The disturbance estimate is a correction within the plant's
            # plausible output range; an unbounded estimate would mean the
            # model is broken, not that the disturbance is that large.
            limit = cfg.measurement_limit_ms
            self._bias = float(np.clip(self._bias, -limit, limit))
        self._t_hist.insert(0, t_k)
        self._t_hist = self._t_hist[: max(self.model.na, 1)]

        ref = exponential_reference(
            t_k,
            cfg.setpoint_ms,
            cfg.mpc.prediction_horizon,
            cfg.period_s,
            cfg.ref_time_constant_s,
        )
        lo, hi = self._effective_bounds(used_ghz)
        request = dict(
            t_hist=self._t_hist,
            c_hist=np.asarray(self._c_hist),
            reference=ref,
            setpoint=cfg.setpoint_ms,
            c_min=lo,
            c_max=hi,
            output_bias=self._bias,
        )
        return PendingUpdate(held=False, request=request, lo=lo, hi=hi)

    def finish(self, pending: PendingUpdate, solution: MPCSolution) -> np.ndarray:
        """Everything after the MPC solve: record the solution, stage
        the next innovation, clip and push the new demands."""
        self.last_solution = solution
        # predicted_outputs[0] includes the bias; store the raw model
        # prediction of the next measurement for the next innovation.
        self._last_raw_prediction = float(solution.predicted_outputs[0]) - self._bias
        c_next = np.clip(self._c_hist[0] + solution.delta_c, pending.lo, pending.hi)
        self._c_hist.insert(0, c_next)
        self._c_hist = self._c_hist[: max(self.model.nb, 1)]
        return c_next.copy()

    def _effective_bounds(
        self, used_ghz: Optional[Sequence[float]]
    ) -> tuple:
        """Static actuator limits tightened by the utilization band."""
        cfg = self.config
        if used_ghz is None or cfg.util_band is None:
            return self.c_min, self.c_max
        used = np.asarray(used_ghz, dtype=float)
        if used.shape != self.c_min.shape:
            raise ValueError(
                f"used_ghz must have shape {self.c_min.shape}, got {used.shape}"
            )
        band_lo, band_hi = cfg.util_band
        lo = np.maximum(self.c_min, used / band_hi)
        hi = np.minimum(
            self.c_max, used / band_lo + cfg.util_band_headroom_ghz
        )
        # Keep the box non-empty and reachable from the current input
        # under the rate limit (otherwise the QP would be infeasible).
        c_now = self._c_hist[0]
        if cfg.mpc.delta_max is not None:
            lo = np.minimum(lo, c_now + cfg.mpc.delta_max)
            hi = np.maximum(hi, c_now - cfg.mpc.delta_max)
        lo = np.minimum(lo, self.c_max)
        hi = np.maximum(hi, lo)
        return lo, hi

    def state_dict(self) -> dict:
        """JSON-safe snapshot of the control state (engine checkpoints).

        Covers everything :meth:`update` reads or writes across periods:
        the output/input histories, the offset-free bias estimate, the
        missing-measurement bookkeeping, and the MPC warm state.  The
        model and config are construction-time inputs, not state.
        """
        return {
            "t_hist": [float(t) for t in self._t_hist],
            "c_hist": [[float(v) for v in c] for c in self._c_hist],
            "last_valid_t": float(self._last_valid_t),
            "bias": float(self._bias),
            "last_raw_prediction": (
                None if self._last_raw_prediction is None
                else float(self._last_raw_prediction)
            ),
            "consecutive_missing": self._consecutive_missing,
            "held_updates": self.held_updates,
            "mpc": self._mpc.state_dict(),
        }

    def load_state_dict(self, state) -> None:
        """Restore :meth:`state_dict` so control resumes bit-identically."""
        c_hist = [np.asarray(c, dtype=float) for c in state["c_hist"]]
        if any(c.shape != self.c_min.shape for c in c_hist):
            raise ValueError(
                f"checkpoint c_hist entries must have shape {self.c_min.shape}"
            )
        self._t_hist = [float(t) for t in state["t_hist"]]
        self._c_hist = c_hist
        self._last_valid_t = float(state["last_valid_t"])
        self._bias = float(state["bias"])
        raw = state["last_raw_prediction"]
        self._last_raw_prediction = None if raw is None else float(raw)
        self._consecutive_missing = int(state["consecutive_missing"])
        self.held_updates = int(state["held_updates"])
        self._mpc.load_state_dict(state["mpc"])

    def notify_allocation(self, actual_alloc_ghz: Sequence[float]) -> None:
        """Overwrite the newest input-history entry with what was *actually*
        granted (anti-windup: when the arbitrator rations an overloaded
        server, the controller must not believe its full demand applied)."""
        actual = np.asarray(actual_alloc_ghz, dtype=float)
        if actual.shape != self._c_hist[0].shape:
            raise ValueError(
                f"expected shape {self._c_hist[0].shape}, got {actual.shape}"
            )
        self._c_hist[0] = actual.copy()
