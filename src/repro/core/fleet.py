"""Fleet-batched control step: one kernel call per phase, not per app.

The scalar production loop in :class:`repro.core.manager.PowerManager`
runs each application's :class:`ResponseTimeController` to completion
before touching the next — one RLS update, one QP factorization, one
history push per app per period.  At the paper's "thousands of
applications" scale the per-app Python dispatch dominates.

:class:`FleetControlStep` re-phases the same work across the whole
fleet using the seam split into the controller by
:meth:`ResponseTimeController.prepare` / ``finish`` and the adaptation
hooks:

1. ``begin_adaptation`` for every app (scoring + RLS sample gating);
2. one :func:`repro.sysid.rls.rls_update_batch` over all gated samples;
3. ``finish_adaptation`` for every app (model supervision / swap);
4. ``prepare`` for every app (measurement handling, bias, bounds);
5. one :func:`repro.control.mpc_core.solve_mpc_batch` over all
   non-held solve requests (grouped by model/config geometry);
6. ``finish`` + ``after_update`` fan the solutions back per app.

Controllers are mutually independent — no step of one app's period
reads another app's state — so this phase reordering changes nothing
but the interleaving.  The batched kernels themselves are *allclose*
to, not bit-identical with, the scalar solves (stacked multi-RHS
LAPACK, einsum reductions); golden-hash pipelines pin
``control_mode="scalar"`` and the equivalence is asserted by
``tests/test_fleet.py`` at pinned tolerances.

Missing-measurement holds (``ControllerConfig.missing_policy``) are
handled inside ``prepare`` exactly as in the scalar path: held apps
skip the solve batch entirely and re-emit their last demands, counter
for counter.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from repro.control.mpc_core import solve_mpc_batch
from repro.core.controller.response_time_controller import ResponseTimeController
from repro.sysid.rls import rls_update_batch

__all__ = ["FleetControlStep"]


class FleetControlStep:
    """Batches all registered controllers' periods through the kernels.

    Holds a live reference to the manager's ``controllers`` mapping, so
    registrations after construction are picked up automatically.
    """

    def __init__(self, controllers: Mapping[str, ResponseTimeController]):
        self.controllers = controllers

    def run(
        self,
        measurements: Mapping[str, float],
        used_ghz: Optional[Mapping[str, np.ndarray]] = None,
    ) -> Tuple[Dict[str, np.ndarray], Dict[str, object]]:
        """One fleet period: returns ``(demands_by_app, stats)``.

        ``measurements`` maps app_id -> measured response time (ms, NaN
        allowed); every key must have a registered controller (the
        caller validates).  ``stats`` reports the grouping the batch
        kernels achieved this period — fed to the
        ``controller.batch_groups`` / ``controller.batch_size`` metrics.
        """
        order = list(measurements)
        ctrls = self.controllers
        stats: Dict[str, object] = {
            "apps": len(order),
            "rls_batched": 0,
            "rls_groups": [],
            "held": 0,
            "solved": 0,
            "mpc_groups": [],
        }

        # 1-2. Adaptation: gate every app's RLS sample, then run one
        # batched estimator update over all of them.
        estimators = []
        samples = []
        for app_id in order:
            ctrl = ctrls[app_id]
            sample = ctrl.begin_adaptation(measurements[app_id])
            if sample is not None and ctrl.estimator is not None:
                estimators.append(ctrl.estimator)
                samples.append(sample)
        if estimators:
            rls_stats: Dict[str, object] = {}
            rls_update_batch(estimators, samples, stats=rls_stats)
            stats["rls_batched"] = len(estimators)
            stats["rls_groups"] = rls_stats.get("groups", [])

        # 3. Supervision (model selection / MPC swap) per app.
        for app_id in order:
            ctrls[app_id].finish_adaptation()

        # 4. Pre-solve half of every period.
        pendings = {}
        for app_id in order:
            usage = used_ghz.get(app_id) if used_ghz is not None else None
            pendings[app_id] = ctrls[app_id].prepare(
                measurements[app_id], used_ghz=usage
            )

        # 5. One grouped MPC solve over the non-held apps.
        demands: Dict[str, np.ndarray] = {}
        solve_ids = [a for a in order if not pendings[a].held]
        for app_id in order:
            if pendings[app_id].held:
                demands[app_id] = pendings[app_id].demands
        if solve_ids:
            mpc_stats: Dict[str, object] = {}
            solutions = solve_mpc_batch(
                [ctrls[a]._mpc for a in solve_ids],
                [pendings[a].request for a in solve_ids],
                stats=mpc_stats,
            )
            for app_id, solution in zip(solve_ids, solutions):
                demands[app_id] = ctrls[app_id].finish(
                    pendings[app_id], solution
                )
            stats["mpc_groups"] = mpc_stats.get("groups", [])
        stats["held"] = len(order) - len(solve_ids)
        stats["solved"] = len(solve_ids)

        # 6. Post-period staging per app (prediction staging etc.).
        for app_id in order:
            ctrls[app_id].after_update()
        return demands, stats
