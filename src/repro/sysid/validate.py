"""Model-validation diagnostics for identified ARX models."""

from __future__ import annotations

import numpy as np

from repro.control.arx import ARXModel

__all__ = ["one_step_r2", "simulation_rmse", "residual_autocorrelation"]


def _aligned_histories(model: ARXModel, t: np.ndarray, c: np.ndarray, k: int):
    """Histories for predicting t(k): outputs end at k-1, inputs at k."""
    t_hist = t[k - 1 :: -1][: model.na]
    c_hist = c[k::-1][: model.nb]
    return t_hist, c_hist


def _one_step_predictions(model: ARXModel, t: np.ndarray, c: np.ndarray) -> np.ndarray:
    """Predicted t(k) for all k with enough history (NaN elsewhere)."""
    lag = max(model.na, model.nb - 1)
    preds = np.full(t.shape[0], np.nan)
    for k in range(lag, t.shape[0]):
        t_hist, c_hist = _aligned_histories(model, t, c, k)
        if np.all(np.isfinite(t_hist)) and np.all(np.isfinite(c_hist)):
            preds[k] = model.one_step(t_hist, c_hist)
    return preds


def one_step_r2(model: ARXModel, t_series: np.ndarray, c_series: np.ndarray) -> float:
    """One-step-ahead R^2 on a (possibly held-out) dataset."""
    t = np.asarray(t_series, dtype=float).ravel()
    c = np.atleast_2d(np.asarray(c_series, dtype=float))
    preds = _one_step_predictions(model, t, c)
    mask = np.isfinite(preds) & np.isfinite(t)
    if mask.sum() < 2:
        raise ValueError("not enough finite samples to validate")
    resid = t[mask] - preds[mask]
    ss_res = float(resid @ resid)
    ss_tot = float(np.sum((t[mask] - t[mask].mean()) ** 2))
    return 1.0 - ss_res / ss_tot if ss_tot > 0 else 0.0


def simulation_rmse(model: ARXModel, t_series: np.ndarray, c_series: np.ndarray) -> float:
    """Free-run simulation RMSE against measurements.

    Harsher than one-step validation: the model sees only the measured
    *inputs* and its own past outputs, so bias and slow drift show up.
    NaN measurements are skipped in the error (but the free run keeps
    going on the model's own outputs).
    """
    t = np.asarray(t_series, dtype=float).ravel()
    c = np.atleast_2d(np.asarray(c_series, dtype=float))
    lag = max(model.na, model.nb - 1)
    K = t.shape[0]
    if K <= lag + 2:
        raise ValueError("series too short for simulation validation")
    t_hist = list(t[lag - 1 :: -1][: model.na]) if model.na else []
    c_hist = [c[j] for j in range(lag, max(lag - model.nb, -1), -1)]
    errors = []
    for k in range(lag, K):
        c_hist.insert(0, c[k])
        c_hist = c_hist[: max(model.nb, 1)]
        pred = model.one_step(t_hist, np.asarray(c_hist))
        if np.isfinite(t[k]):
            errors.append(pred - t[k])
        t_hist.insert(0, pred)
        t_hist = t_hist[: max(model.na, 1)]
    if not errors:
        raise ValueError("no finite measurements to compare")
    err = np.asarray(errors)
    return float(np.sqrt(np.mean(err**2)))


def residual_autocorrelation(
    model: ARXModel, t_series: np.ndarray, c_series: np.ndarray, max_lag: int = 10
) -> np.ndarray:
    """Normalized autocorrelation of one-step residuals at lags 1..max_lag.

    For a well-fit model the residuals are white: all values should be
    small (|rho| below roughly ``2/sqrt(N)``).
    """
    if max_lag < 1:
        raise ValueError(f"max_lag must be >= 1, got {max_lag}")
    t = np.asarray(t_series, dtype=float).ravel()
    c = np.atleast_2d(np.asarray(c_series, dtype=float))
    preds = _one_step_predictions(model, t, c)
    mask = np.isfinite(preds) & np.isfinite(t)
    resid = (t - preds)[mask]
    n = resid.shape[0]
    if n < max_lag + 2:
        raise ValueError(f"need more than {max_lag + 2} residuals, have {n}")
    resid = resid - resid.mean()
    denom = float(resid @ resid)
    if denom == 0:
        return np.zeros(max_lag)
    return np.asarray(
        [float(resid[lag:] @ resid[:-lag]) / denom for lag in range(1, max_lag + 1)]
    )
