"""Recursive least squares for online ARX adaptation.

The paper identifies its response-time model once, offline (§IV-B), and
relies on feedback to absorb mismatch.  When the plant drifts far from
the identification region — new request mix, software update, database
growth — a fixed local-linear model's *gains* go stale even if feedback
fixes the offset.  This module provides the standard remedy: recursive
least squares with exponential forgetting, plus the same physical
projection used by the offline fit (input gains ≤ 0, stable AR term), so
the controller's model tracks the plant during operation.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.control.arx import ARXModel
from repro.obs import get_telemetry
from repro.util.validation import check_in_range, check_positive

__all__ = ["RecursiveARXEstimator", "rls_update_batch"]


class RecursiveARXEstimator:
    """Exponentially-forgetting RLS over ARX parameters.

    Parameters
    ----------
    initial_model:
        Starting point (typically the offline identification result).
    forgetting:
        λ in (0.9, 1]; smaller forgets faster.  0.98 tracks drifts over
        ~50 samples.
    relative_uncertainty:
        Initial per-parameter standard deviation as a fraction of the
        parameter's own magnitude.  ARX parameters span four orders of
        magnitude (AR term ~0.1, gains ~1000s), so an isotropic
        covariance would let one noisy sample multiply a gain a
        hundredfold; scaling the prior to each parameter keeps updates
        proportionate.
    max_relative_step:
        Per-update clip on each parameter's change, as a fraction of
        its reference scale — a bounded learning rate that keeps a burst
        of outliers (e.g. during an overload transient) from teleporting
        the model.
    covariance_trace_cap:
        Covariance windup guard: when poor excitation inflates
        ``trace(P)`` past this cap (relative to the initial trace), P is
        rescaled — otherwise the next informative sample would cause a
        violent parameter jump.
    project:
        Apply the physical projection after each update (gains ≤ 0,
        AR coefficients in [0, 0.98]).
    """

    def __init__(
        self,
        initial_model: ARXModel,
        forgetting: float = 0.98,
        relative_uncertainty: float = 0.3,
        max_relative_step: float = 0.3,
        covariance_trace_cap: float = 100.0,
        project: bool = True,
        initial_covariance: float | None = None,
    ):
        self.na = initial_model.na
        self.nb = initial_model.nb
        self.m = initial_model.n_inputs
        check_in_range("forgetting", forgetting, 0.9, 1.0)
        check_positive("relative_uncertainty", relative_uncertainty)
        check_positive("max_relative_step", max_relative_step)
        check_positive("covariance_trace_cap", covariance_trace_cap)
        self.forgetting = float(forgetting)
        self.project = bool(project)
        self.max_relative_step = float(max_relative_step)
        self.theta = np.concatenate(
            [initial_model.a, initial_model.b.ravel(), [initial_model.g]]
        )
        # Reference scale per parameter: its own magnitude with a floor
        # (so a zero coefficient can still be learned).
        self.scale = np.abs(self.theta) + np.concatenate(
            [np.full(self.na, 0.1), np.full(self.nb * self.m, 10.0), [10.0]]
        )
        if initial_covariance is not None:
            # Back-compat isotropic mode (tests / expert use).
            check_positive("initial_covariance", initial_covariance)
            self.P = np.eye(self.theta.size) * float(initial_covariance)
        else:
            self.P = np.diag((float(relative_uncertainty) * self.scale) ** 2)
        self._trace_cap = float(covariance_trace_cap) * float(np.trace(self.P))
        self.n_updates = 0

    # -- interface ------------------------------------------------------

    @property
    def model(self) -> ARXModel:
        """The current parameter estimate as an :class:`ARXModel`."""
        a = self.theta[: self.na]
        b = self.theta[self.na : self.na + self.nb * self.m].reshape(self.nb, self.m)
        g = float(self.theta[-1])
        return ARXModel(a=a.copy(), b=b.copy(), g=g)

    def regressor(self, t_hist: Sequence[float], c_hist: np.ndarray) -> np.ndarray:
        """Build the RLS regressor for the measurement of period k.

        ``t_hist`` is most-recent-first *excluding* the new measurement
        (``[t(k-1), t(k-2), ...]``); ``c_hist`` is most-recent-first with
        ``c_hist[0] = c(k)``, the input active during the measured
        period — the same alignment as :func:`repro.sysid.fit.fit_arx`.
        """
        t_hist = np.asarray(t_hist, dtype=float)
        c_hist = np.atleast_2d(np.asarray(c_hist, dtype=float))
        if t_hist.shape[0] < self.na:
            raise ValueError(f"need {self.na} past outputs, got {t_hist.shape[0]}")
        if c_hist.shape[0] < self.nb or c_hist.shape[1] != self.m:
            raise ValueError(
                f"need {self.nb} inputs of dim {self.m}, got {c_hist.shape}"
            )
        return np.concatenate(
            [t_hist[: self.na], c_hist[: self.nb].ravel(), [1.0]]
        )

    def update(self, measured_t: float, t_hist: Sequence[float], c_hist: np.ndarray) -> ARXModel:
        """One RLS step; returns the updated model.

        Non-finite measurements are ignored (the estimator holds).
        """
        if not np.isfinite(measured_t):
            return self.model
        x = self.regressor(t_hist, c_hist)
        if not np.all(np.isfinite(x)):
            return self.model
        tel = get_telemetry()
        if not tel.enabled:
            return self._update(measured_t, x)
        with tel.span("sysid.rls.update"):
            model = self._update(measured_t, x)
        tel.count("sysid.rls.updates")
        return model

    def _update(self, measured_t: float, x: np.ndarray) -> ARXModel:
        """The RLS arithmetic, factored out of the traced entry point."""
        lam = self.forgetting
        Px = self.P @ x
        denom = lam + float(x @ Px)
        gain = Px / denom
        innovation = float(measured_t) - float(x @ self.theta)
        step = gain * innovation
        limit = self.max_relative_step * self.scale
        np.clip(step, -limit, limit, out=step)
        self.theta = self.theta + step
        self.P = (self.P - np.outer(gain, Px)) / lam
        # Covariance windup guard.
        trace = float(np.trace(self.P))
        if trace > self._trace_cap:
            self.P *= self._trace_cap / trace
        if self.project:
            self._project()
        self.n_updates += 1
        return self.model

    def state_dict(self) -> dict:
        """JSON-safe snapshot of the estimate (engine checkpoints)."""
        return {
            "theta": [float(v) for v in self.theta],
            "scale": [float(v) for v in self.scale],
            "P": [[float(v) for v in row] for row in self.P],
            "trace_cap": self._trace_cap,
            "n_updates": self.n_updates,
        }

    def load_state_dict(self, state) -> None:
        """Restore :meth:`state_dict` so updates resume bit-identically."""
        theta = np.asarray(state["theta"], dtype=float)
        if theta.shape != self.theta.shape:
            raise ValueError(
                f"checkpoint theta has shape {theta.shape}, estimator needs "
                f"{self.theta.shape}"
            )
        self.theta = theta
        self.scale = np.asarray(state["scale"], dtype=float)
        self.P = np.asarray(state["P"], dtype=float)
        self._trace_cap = float(state["trace_cap"])
        self.n_updates = int(state["n_updates"])

    # -- internals ------------------------------------------------------

    def _project(self) -> None:
        np.clip(self.theta[: self.na], 0.0, 0.98, out=self.theta[: self.na])
        b_slice = slice(self.na, self.na + self.nb * self.m)
        np.clip(self.theta[b_slice], None, 0.0, out=self.theta[b_slice])


def rls_update_batch(
    estimators: Sequence[RecursiveARXEstimator],
    measurements: Sequence[tuple],
    stats: Optional[dict] = None,
) -> list:
    """One RLS step for many estimators as stacked array arithmetic.

    ``measurements[i]`` is ``(measured_t, t_hist, c_hist)`` — the
    arguments of :meth:`RecursiveARXEstimator.update` for estimator i.
    Estimators with the same ARX shape ``(na, nb, m)`` are stacked into
    ``(B, n)`` parameter and ``(B, n, n)`` covariance arrays and updated
    with batched einsums — one NumPy dispatch per fleet instead of one
    per app.  Per-estimator scalars (forgetting, step limits, trace
    caps) ride along as broadcast vectors, and the usual holds apply
    elementwise: a non-finite measurement or regressor leaves that
    estimator untouched.

    The arithmetic reorders floating-point sums (einsum vs. matvec), so
    results are *allclose* to, not bit-identical with, sequential
    :meth:`~RecursiveARXEstimator.update` calls — checkpointed
    golden-hash runs must keep the scalar path.

    ``stats``, when given a dict, receives grouping telemetry:
    ``groups`` (live member count per shape group, descending) and
    ``held`` (samples skipped by the non-finite hold).

    Returns the list of updated :class:`ARXModel` in input order.
    """
    if len(estimators) != len(measurements):
        raise ValueError(
            f"estimators and measurements must pair up, got "
            f"{len(estimators)} vs {len(measurements)}"
        )
    groups: dict = {}
    for i, est in enumerate(estimators):
        groups.setdefault((est.na, est.nb, est.m), []).append(i)
    if stats is not None:
        stats["groups"] = []
        stats["held"] = 0

    tel = get_telemetry()
    for (na, nb, m), members in groups.items():
        live = []
        xs = []
        ys = []
        for i in members:
            measured_t, t_hist, c_hist = measurements[i]
            if not np.isfinite(measured_t):
                continue
            x = estimators[i].regressor(t_hist, c_hist)
            if not np.all(np.isfinite(x)):
                continue
            live.append(i)
            xs.append(x)
            ys.append(float(measured_t))
        if stats is not None:
            stats["held"] += len(members) - len(live)
            if live:
                stats["groups"].append(len(live))
        if not live:
            continue
        B = len(live)
        x = np.stack(xs)                                   # (B, n)
        y = np.asarray(ys)                                 # (B,)
        theta = np.stack([estimators[i].theta for i in live])   # (B, n)
        P = np.stack([estimators[i].P for i in live])           # (B, n, n)
        lam = np.asarray([estimators[i].forgetting for i in live])
        limit = np.stack(
            [estimators[i].max_relative_step * estimators[i].scale for i in live]
        )
        cap = np.asarray([estimators[i]._trace_cap for i in live])

        Px = np.einsum("bij,bj->bi", P, x)
        denom = lam + np.einsum("bi,bi->b", x, Px)
        gain = Px / denom[:, None]
        innovation = y - np.einsum("bi,bi->b", x, theta)
        step = gain * innovation[:, None]
        np.clip(step, -limit, limit, out=step)
        theta = theta + step
        P = (P - gain[:, :, None] * Px[:, None, :]) / lam[:, None, None]
        trace = np.einsum("bii->b", P)
        inflated = trace > cap
        if np.any(inflated):
            P[inflated] *= (cap[inflated] / trace[inflated])[:, None, None]

        proj = np.asarray([estimators[i].project for i in live])
        if np.any(proj):
            a_part = np.clip(theta[:, :na], 0.0, 0.98)
            b_part = np.clip(theta[:, na : na + nb * m], None, 0.0)
            theta[proj, :na] = a_part[proj]
            theta[proj, na : na + nb * m] = b_part[proj]

        for row, i in enumerate(live):
            est = estimators[i]
            est.theta = theta[row]
            est.P = P[row]
            est.n_updates += 1
        if tel.enabled:
            tel.count("sysid.rls.updates", B)
    if stats is not None:
        stats["groups"].sort(reverse=True)
    return [est.model for est in estimators]
