"""Excitation-signal design for identification experiments.

Good identification data must be *persistently exciting*: the inputs
(CPU allocations) have to move enough, across enough frequencies, for
least squares to separate the coefficients.  The workhorses here are the
pseudo-random binary sequence (PRBS) and its amplitude-modulated variant
(APRBS), the standard choices for identifying mildly nonlinear plants
around an operating region.
"""

from __future__ import annotations

import numpy as np

from repro.util.rng import RngLike, ensure_rng

__all__ = ["prbs", "aprbs", "excitation_trajectory"]


def prbs(n: int, rng: RngLike = None, hold: int = 1) -> np.ndarray:
    """Pseudo-random binary sequence of +/-1 with a per-symbol hold.

    ``hold`` repeats each random symbol that many samples, shifting the
    excitation energy toward lower frequencies (useful when the plant's
    dominant time constant spans several control periods).
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if hold < 1:
        raise ValueError(f"hold must be >= 1, got {hold}")
    generator = ensure_rng(rng)
    n_symbols = -(-n // hold)
    symbols = generator.choice([-1.0, 1.0], size=n_symbols)
    return np.repeat(symbols, hold)[:n]


def aprbs(
    n: int,
    low: float,
    high: float,
    rng: RngLike = None,
    min_hold: int = 1,
    max_hold: int = 4,
) -> np.ndarray:
    """Amplitude-modulated PRBS: random levels in [low, high], random holds.

    Each segment holds a uniformly drawn level for a uniformly drawn
    number of samples in ``[min_hold, max_hold]``.  Richer amplitude
    content than binary PRBS, which matters for plants (like queueing
    systems) whose gain varies with the operating point.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if high < low:
        raise ValueError(f"high ({high}) must be >= low ({low})")
    if not 1 <= min_hold <= max_hold:
        raise ValueError(f"need 1 <= min_hold <= max_hold, got {min_hold}, {max_hold}")
    generator = ensure_rng(rng)
    out = np.empty(n)
    i = 0
    while i < n:
        level = generator.uniform(low, high)
        hold = int(generator.integers(min_hold, max_hold + 1))
        out[i : i + hold] = level
        i += hold
    return out


def excitation_trajectory(
    n_periods: int,
    lower: np.ndarray,
    upper: np.ndarray,
    rng: RngLike = None,
    min_hold: int = 1,
    max_hold: int = 4,
) -> np.ndarray:
    """Per-input APRBS allocation trajectory, shape ``(n_periods, m)``.

    Each input channel gets an independent APRBS within its own
    ``[lower[j], upper[j]]`` actuator range, so the least-squares
    regressor matrix is well-conditioned across channels.
    """
    lower = np.atleast_1d(np.asarray(lower, dtype=float))
    upper = np.atleast_1d(np.asarray(upper, dtype=float))
    if lower.shape != upper.shape:
        raise ValueError("lower and upper must have the same shape")
    if np.any(upper < lower):
        raise ValueError(f"upper must be >= lower, got {lower} / {upper}")
    generator = ensure_rng(rng)
    cols = [
        aprbs(n_periods, lower[j], upper[j], generator, min_hold, max_hold)
        for j in range(lower.shape[0])
    ]
    return np.column_stack(cols)
