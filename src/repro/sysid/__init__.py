"""System identification (paper §IV-B).

"Rather than building a physical equation between the manipulated
variables and the controlled variable, we infer their relationship by
collecting data in experiments and then establish a statistical model
based on the measured data."  This package provides the three pieces of
that workflow: excitation-signal design, least-squares ARX fitting, and
model validation.
"""

from repro.sysid.excitation import prbs, aprbs, excitation_trajectory
from repro.sysid.fit import FitResult, fit_arx
from repro.sysid.rls import RecursiveARXEstimator
from repro.sysid.validate import one_step_r2, simulation_rmse, residual_autocorrelation
from repro.sysid.experiment import IdentificationData, run_identification_experiment, identify_app_model

__all__ = [
    "prbs",
    "aprbs",
    "excitation_trajectory",
    "FitResult",
    "fit_arx",
    "RecursiveARXEstimator",
    "one_step_r2",
    "simulation_rmse",
    "residual_autocorrelation",
    "IdentificationData",
    "run_identification_experiment",
    "identify_app_model",
]
