"""Least-squares ARX fitting (the paper's "system identification")."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import optimize

from repro.control.arx import ARXModel

__all__ = ["FitResult", "fit_arx"]


@dataclass(frozen=True)
class FitResult:
    """An identified model plus regression diagnostics.

    Attributes
    ----------
    model:
        The fitted :class:`~repro.control.arx.ARXModel`.
    r_squared:
        One-step-ahead coefficient of determination on the fitting data.
    rmse:
        Root-mean-square one-step residual (same units as the output).
    n_samples:
        Number of regression rows used.
    condition_number:
        Condition number of the regressor matrix — large values warn
        that the excitation was not rich enough.
    """

    model: ARXModel
    r_squared: float
    rmse: float
    n_samples: int
    condition_number: float


def fit_arx(
    t_series: np.ndarray,
    c_series: np.ndarray,
    na: int = 1,
    nb: int = 2,
    fit_intercept: bool = True,
    constraints: str = "physical",
) -> FitResult:
    """Fit ``t(k) = sum_p a_p t(k-p) + sum_q b_q' c(k-q) + g`` by least squares.

    Parameters
    ----------
    t_series:
        Output measurements, shape ``(K,)`` — e.g. per-period
        90-percentile response times in ms.  Rows containing NaN outputs
        (periods where no request completed) are dropped.
    c_series:
        Inputs applied during each period, shape ``(K, m)`` — the
        per-tier CPU allocations.  ``c_series[k]`` is the input active
        while ``t_series[k]`` was measured; the regression uses
        ``c(k), c(k-1), ..., c(k-nb+1)`` (this library's period-indexed
        form of the paper's Eq. 1 — see :mod:`repro.control.arx`).
    na, nb:
        Model orders (paper uses na=1, nb=2).
    fit_intercept:
        Estimate the affine term ``g`` (recommended: response-time
        models are local linearizations around an operating point).
    constraints:
        ``"physical"`` (default) bounds the coefficients by what a
        response-time-vs-capacity plant can physically do: every input
        gain non-positive (more CPU never increases response time) and
        the autoregressive terms in [0, 0.98] (stable, non-oscillatory).
        Unconstrained noise routinely hands one lag a large positive
        artifact canceled by the next lag — fake dynamics an MPC will
        happily exploit.  ``"none"`` gives plain least squares.
    """
    if constraints not in ("none", "physical"):
        raise ValueError(f"constraints must be 'none' or 'physical', got {constraints!r}")
    t = np.asarray(t_series, dtype=float).ravel()
    c = np.atleast_2d(np.asarray(c_series, dtype=float))
    if c.shape[0] != t.shape[0]:
        raise ValueError(
            f"t_series ({t.shape[0]}) and c_series ({c.shape[0]}) lengths differ"
        )
    if na < 1 or nb < 1:
        raise ValueError(f"na and nb must be >= 1, got na={na}, nb={nb}")
    m = c.shape[1]
    lag = max(na, nb - 1)
    K = t.shape[0]
    if K - lag < na + nb * m + (1 if fit_intercept else 0):
        raise ValueError(
            f"not enough samples ({K}) for na={na}, nb={nb}, m={m}"
        )

    rows = []
    ys = []
    for k in range(lag, K):
        regress = [t[k - p] for p in range(1, na + 1)]
        for q in range(1, nb + 1):
            regress.extend(c[k - q + 1])
        if fit_intercept:
            regress.append(1.0)
        row = np.asarray(regress)
        y = t[k]
        if np.all(np.isfinite(row)) and np.isfinite(y):
            rows.append(row)
            ys.append(y)
    X = np.asarray(rows)
    y = np.asarray(ys)
    if X.shape[0] < X.shape[1]:
        raise ValueError(
            f"only {X.shape[0]} finite regression rows for {X.shape[1]} parameters"
        )

    if constraints == "physical":
        n_params = X.shape[1]
        lower = np.full(n_params, -np.inf)
        upper = np.full(n_params, np.inf)
        lower[:na] = 0.0
        upper[:na] = 0.98
        upper[na : na + nb * m] = 0.0
        theta = optimize.lsq_linear(X, y, bounds=(lower, upper)).x
    else:
        theta, *_ = np.linalg.lstsq(X, y, rcond=None)
    resid = y - X @ theta
    ss_res = float(resid @ resid)
    ss_tot = float(np.sum((y - y.mean()) ** 2))
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 0.0
    cond = float(np.linalg.cond(X))

    a = theta[:na]
    b = theta[na : na + nb * m].reshape(nb, m)
    g = float(theta[-1]) if fit_intercept else 0.0
    model = ARXModel(a=a, b=b, g=g)
    return FitResult(
        model=model,
        r_squared=float(r2),
        rmse=float(np.sqrt(ss_res / max(len(y), 1))),
        n_samples=len(y),
        condition_number=cond,
    )
