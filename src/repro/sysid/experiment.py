"""Run an identification experiment against a simulated application.

This reproduces the paper's workflow end-to-end: drive the (simulated)
RUBBoS instance with an exciting CPU-allocation trajectory, record the
per-period 90-percentile response times, and fit the ARX model the MPC
controller will use.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.rubbos import MultiTierApp
from repro.sysid.excitation import excitation_trajectory
from repro.sysid.fit import FitResult, fit_arx
from repro.util.rng import RngLike, ensure_rng
from repro.util.validation import check_positive

__all__ = ["IdentificationData", "run_identification_experiment", "identify_app_model"]


@dataclass(frozen=True)
class IdentificationData:
    """Raw input/output data from an identification run.

    ``c`` has shape ``(K, m)`` (allocation applied during period k);
    ``t`` has shape ``(K,)`` (p90 response time measured over period k,
    ms; NaN where no request completed).
    """

    t: np.ndarray
    c: np.ndarray
    period_s: float


def run_identification_experiment(
    app: MultiTierApp,
    n_periods: int = 120,
    period_s: float = 15.0,
    alloc_lower: np.ndarray | None = None,
    alloc_upper: np.ndarray | None = None,
    warmup_s: float = 60.0,
    rng: RngLike = None,
    metric: str = "p90",
) -> IdentificationData:
    """Excite *app*'s allocations and record its response times.

    The excitation is an independent APRBS per tier within
    ``[alloc_lower, alloc_upper]`` (defaults: the tier actuator ranges
    narrowed to their central 60%, keeping the plant inside the region
    where the local-linear model is a sensible fit).  ``metric`` picks
    the recorded SLA statistic (p90/p50/mean/max) — it must match the
    metric the controller will later consume.
    """
    check_positive("period_s", period_s)
    if n_periods < 10:
        raise ValueError(f"n_periods must be >= 10, got {n_periods}")
    generator = ensure_rng(rng)
    lo, hi = app.allocation_bounds()
    if alloc_lower is None:
        alloc_lower = lo + 0.2 * (hi - lo)
    if alloc_upper is None:
        alloc_upper = hi - 0.2 * (hi - lo)
    trajectory = excitation_trajectory(
        n_periods, np.asarray(alloc_lower), np.asarray(alloc_upper), generator
    )
    app.warmup(warmup_s)
    t = np.empty(n_periods)
    for k in range(n_periods):
        app.set_allocations(trajectory[k])
        stats = app.run_period(period_s)
        t[k] = stats.metric(metric)
    return IdentificationData(t=t, c=trajectory, period_s=period_s)


def identify_app_model(
    app: MultiTierApp,
    na: int = 1,
    nb: int = 2,
    n_periods: int = 120,
    period_s: float = 15.0,
    rng: RngLike = None,
) -> FitResult:
    """Convenience wrapper: excite, record, and fit in one call.

    Uses the paper's model orders (na=1, nb=2) by default.
    """
    data = run_identification_experiment(
        app, n_periods=n_periods, period_s=period_s, rng=rng
    )
    return fit_arx(data.t, data.c, na=na, nb=nb)
