"""Bin-packing substrate: first-fit family plus Minimum Bin Slack.

The paper's optimizer is built on the Minimum-Bin-Slack heuristic of
Fleszar & Hindi (2002), extended with a pluggable feasibility constraint
(its Algorithm 1); the pMapper baseline is built on first-fit decreasing.
Both primitives live here, domain-free, so they can be tested as pure
packing algorithms; :mod:`repro.core.optimizer` adds the server/VM
semantics.
"""

from repro.packing.bounds import capacity_bound_servers, l1_bound, l2_bound
from repro.packing.firstfit import first_fit, first_fit_decreasing, best_fit_decreasing
from repro.packing.mbs import MBSResult, minimum_bin_slack

__all__ = [
    "capacity_bound_servers",
    "l1_bound",
    "l2_bound",
    "first_fit",
    "first_fit_decreasing",
    "best_fit_decreasing",
    "MBSResult",
    "minimum_bin_slack",
]
