"""Lower bounds on bin-packing solutions (Martello & Toth).

Heuristics like FFD and Minimum Slack give *feasible* packings; these
bounds certify how close they come to optimal without solving the
NP-hard problem.  The test suite and packing ablation use them to check
PAC's server counts are honest, not just legal.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

__all__ = ["l1_bound", "l2_bound", "capacity_bound_servers"]


def l1_bound(item_sizes: Sequence[float], capacity: float) -> int:
    """The continuous bound: ``ceil(sum sizes / capacity)``."""
    sizes = np.asarray(item_sizes, dtype=float)
    if capacity <= 0:
        raise ValueError(f"capacity must be positive, got {capacity}")
    if np.any(sizes < 0):
        raise ValueError("sizes must be non-negative")
    if np.any(sizes > capacity + 1e-12):
        raise ValueError("an item exceeds the bin capacity; no packing exists")
    total = float(sizes.sum())
    return int(math.ceil(total / capacity - 1e-12)) if total > 0 else 0


def l2_bound(item_sizes: Sequence[float], capacity: float) -> int:
    """Martello & Toth's L2: L1 strengthened by big-item counting.

    For each threshold ``t`` in ``(0, capacity/2]``, items larger than
    ``capacity - t`` each need their own bin; items in
    ``(capacity/2, capacity - t]`` also cannot share with each other;
    the small remainder is volume-bounded.  L2 = max over thresholds.
    """
    sizes = np.sort(np.asarray(item_sizes, dtype=float))[::-1]
    if capacity <= 0:
        raise ValueError(f"capacity must be positive, got {capacity}")
    if sizes.size == 0:
        return 0
    if np.any(sizes < 0):
        raise ValueError("sizes must be non-negative")
    if sizes[0] > capacity + 1e-12:
        raise ValueError("an item exceeds the bin capacity; no packing exists")
    best = l1_bound(sizes, capacity)
    thresholds = np.unique(sizes[sizes <= capacity / 2.0])
    for t in np.concatenate([[0.0], thresholds]):
        huge = sizes > capacity - t          # need a dedicated bin each
        large = (sizes > capacity / 2.0) & ~huge   # pairwise incompatible
        small = sizes[(sizes >= t) & ~huge & ~large]
        n1 = int(huge.sum())
        n2 = int(large.sum())
        # Volume of small items that cannot fit into the large items' slack.
        slack_in_large = n2 * capacity - float(sizes[large].sum())
        overflow = max(float(small.sum()) - slack_in_large, 0.0)
        candidate = n1 + n2 + int(math.ceil(overflow / capacity - 1e-12))
        best = max(best, candidate)
    return best


def capacity_bound_servers(
    demands_ghz: Sequence[float],
    server_capacities_ghz: Sequence[float],
    target_utilization: float = 1.0,
) -> int:
    """Minimum number of servers by pure capacity, greedily largest-first.

    A lower bound for heterogeneous-server consolidation: no placement
    can use fewer servers than needed to cover total demand with the
    biggest machines first.
    """
    if not 0 < target_utilization <= 1.0:
        raise ValueError(f"target_utilization must be in (0,1], got {target_utilization}")
    demand = float(np.sum(np.asarray(demands_ghz, dtype=float)))
    caps = np.sort(np.asarray(server_capacities_ghz, dtype=float))[::-1]
    caps = caps * target_utilization
    if demand <= 0:
        return 0
    cum = np.cumsum(caps)
    idx = int(np.searchsorted(cum, demand - 1e-12))
    if idx >= caps.size:
        raise ValueError("total demand exceeds total capacity")
    return idx + 1
