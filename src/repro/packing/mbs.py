"""Minimum Bin Slack with a pluggable constraint (paper Algorithm 1).

The classic Minimum-Bin-Slack heuristic (Fleszar & Hindi 2002) searches,
depth-first over items sorted by decreasing size, for the subset that
fills one bin as completely as possible.  The paper extends it two ways
(§V), both implemented here:

* "evaluating a more general constraint in each step, instead of
  checking if the total size of the items exceeds the size of the bin" —
  the :class:`PackingConstraint` hook (e.g. a server memory limit);
* an allowed-slack early exit ``epsilon`` plus a step budget that
  *escalates* ``epsilon`` when the search runs long (Algorithm 1 lines
  4-5 and 15-17), bounding worst-case running time.

The search is iterative (explicit stack), so item counts in the
thousands cannot hit the interpreter recursion limit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["PackingConstraint", "MemoryConstraint", "CompositeConstraint", "MBSResult", "minimum_bin_slack"]

_FIT_TOL = 1e-9


class PackingConstraint:
    """Incremental feasibility hook for the MBS search.

    ``accepts(idx)`` is queried before item *idx* joins the current
    selection; ``push``/``pop`` notify the constraint so it can maintain
    O(1) running state across the depth-first search.
    The base class accepts everything.
    """

    def accepts(self, idx: int) -> bool:
        """Would adding item *idx* keep the constraint satisfied?"""
        return True

    def push(self, idx: int) -> None:
        """Item *idx* was added to the selection."""

    def pop(self, idx: int) -> None:
        """Item *idx* was removed from the selection (backtrack)."""


class MemoryConstraint(PackingConstraint):
    """Total selected memory must not exceed the bin's free memory."""

    def __init__(self, memory_sizes: Sequence[float], memory_capacity: float):
        self.sizes = np.asarray(memory_sizes, dtype=float)
        if np.any(self.sizes < 0):
            raise ValueError("memory sizes must be non-negative")
        if memory_capacity < 0:
            raise ValueError(f"memory_capacity must be >= 0, got {memory_capacity}")
        self.capacity = float(memory_capacity)
        self.used = 0.0

    def accepts(self, idx: int) -> bool:
        return self.used + self.sizes[idx] <= self.capacity + _FIT_TOL

    def push(self, idx: int) -> None:
        self.used += self.sizes[idx]

    def pop(self, idx: int) -> None:
        self.used -= self.sizes[idx]


class CompositeConstraint(PackingConstraint):
    """Conjunction of several constraints."""

    def __init__(self, constraints: Sequence[PackingConstraint]):
        self.constraints = list(constraints)

    def accepts(self, idx: int) -> bool:
        return all(c.accepts(idx) for c in self.constraints)

    def push(self, idx: int) -> None:
        for c in self.constraints:
            c.push(idx)

    def pop(self, idx: int) -> None:
        for c in self.constraints:
            c.pop(idx)


@dataclass(frozen=True)
class MBSResult:
    """Outcome of a Minimum-Bin-Slack search.

    ``selected`` are indices into the caller's item list (best subset
    found); ``slack`` is the unfilled primary capacity it leaves;
    ``epsilon_used`` is the allowed slack after any escalations;
    ``early_exit`` reports whether the epsilon threshold (rather than
    exhaustion of the search space or the hard step cap) ended the run.
    """

    selected: Tuple[int, ...]
    slack: float
    steps: int
    epsilon_used: float
    early_exit: bool


def minimum_bin_slack(
    primary_sizes: Sequence[float],
    capacity: float,
    constraint: Optional[PackingConstraint] = None,
    epsilon: float = 0.0,
    max_steps: int = 20000,
    epsilon_step: Optional[float] = None,
    hard_step_cap: Optional[int] = None,
) -> MBSResult:
    """Select items minimizing one bin's unfilled primary capacity.

    Parameters
    ----------
    primary_sizes:
        Item sizes in the bin's primary dimension (CPU demand, GHz).
    capacity:
        The bin's free primary capacity.
    constraint:
        Optional additional feasibility (e.g. memory) — Algorithm 1's
        generalized per-step check.
    epsilon:
        Allowed slack: the search stops as soon as a selection leaves
        at most this much capacity unused (Algorithm 1 lines 4-5).
    max_steps:
        Steps between epsilon escalations (lines 15-17).  Each
        feasibility evaluation counts as one step.
    epsilon_step:
        Escalation increment; defaults to 5% of ``capacity``.
    hard_step_cap:
        Absolute step bound (defaults to ``50 * max_steps``); guarantees
        termination even when escalation alone does not converge.
    """
    sizes = np.asarray(primary_sizes, dtype=float)
    if sizes.ndim != 1:
        raise ValueError(f"primary_sizes must be 1-D, got shape {sizes.shape}")
    if np.any(sizes < 0):
        raise ValueError("primary sizes must be non-negative")
    if capacity < 0:
        raise ValueError(f"capacity must be >= 0, got {capacity}")
    if epsilon < 0:
        raise ValueError(f"epsilon must be >= 0, got {epsilon}")
    if max_steps < 1:
        raise ValueError(f"max_steps must be >= 1, got {max_steps}")
    if epsilon_step is None:
        epsilon_step = 0.05 * capacity if capacity > 0 else 1.0
    if hard_step_cap is None:
        hard_step_cap = 50 * max_steps

    n = sizes.shape[0]
    if capacity <= epsilon + _FIT_TOL:
        # The empty selection already meets the allowed slack.
        return MBSResult((), float(capacity), 0, float(epsilon), True)
    order = sorted(range(n), key=lambda i: -sizes[i])
    best_sel: Tuple[int, ...] = ()
    best_slack = float(capacity)
    steps = 0
    eps_current = float(epsilon)
    early = False

    path: List[int] = []
    used = 0.0
    # pos_stack[d] = next order-position to try at depth d.
    pos_stack: List[int] = [0]

    while pos_stack:
        pos = pos_stack[-1]
        taken = None
        while pos < n:
            idx = order[pos]
            pos += 1
            steps += 1
            if steps % max_steps == 0:
                eps_current += epsilon_step  # escalate (Algorithm 1 line 16)
            if used + sizes[idx] > capacity + _FIT_TOL:
                continue
            if constraint is not None and not constraint.accepts(idx):
                continue
            taken = idx
            break
        pos_stack[-1] = pos
        if taken is not None:
            path.append(taken)
            used += sizes[taken]
            if constraint is not None:
                constraint.push(taken)
            slack = capacity - used
            if slack < best_slack - _FIT_TOL:
                best_slack = slack
                best_sel = tuple(path)
            if best_slack <= eps_current + _FIT_TOL or steps >= hard_step_cap:
                early = best_slack <= eps_current + _FIT_TOL
                break
            pos_stack.append(pos)
        else:
            pos_stack.pop()
            if path:
                last = path.pop()
                used -= sizes[last]
                if constraint is not None:
                    constraint.pop(last)

    # Unwind constraint state so the object can be reused by the caller.
    if constraint is not None:
        while path:
            constraint.pop(path.pop())

    return MBSResult(
        selected=best_sel,
        slack=float(best_slack),
        steps=steps,
        epsilon_used=eps_current,
        early_exit=early,
    )
