"""Minimum Bin Slack with a pluggable constraint (paper Algorithm 1).

The classic Minimum-Bin-Slack heuristic (Fleszar & Hindi 2002) searches,
depth-first over items sorted by decreasing size, for the subset that
fills one bin as completely as possible.  The paper extends it two ways
(§V), both implemented here:

* "evaluating a more general constraint in each step, instead of
  checking if the total size of the items exceeds the size of the bin" —
  the :class:`PackingConstraint` hook (e.g. a server memory limit);
* an allowed-slack early exit ``epsilon`` plus a step budget that
  *escalates* ``epsilon`` when the search runs long (Algorithm 1 lines
  4-5 and 15-17), bounding worst-case running time.

The search is iterative (explicit stack), so item counts in the
thousands cannot hit the interpreter recursion limit.

Fast lane
---------
Two optional accelerations keep the search out of the simulator's
hot-path profile without changing what it returns:

* **Dominance pruning** (``prune=True``): with items visited in
  decreasing-size order, the suffix sum of the remaining sizes is an
  upper bound on how much more a branch can ever add to the bin.  A
  branch whose best-case fill cannot *strictly* beat the incumbent is
  cut.  Because the incumbent only ever updates on strict improvements,
  pruning preserves the exact sequence of incumbent updates — only the
  step count (and therefore epsilon-escalation timing on searches that
  exceed ``max_steps``) can differ from the unpruned search.
* **Incumbent seeding** (``incumbent=...``): start the search from a
  known-good selection (e.g. the previous optimizer period's choice for
  the same server) instead of from the empty bin.  The seed tightens the
  pruning bound immediately and triggers the epsilon early-exit without
  a single search step when the previous selection is still good enough.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["PackingConstraint", "MemoryConstraint", "CompositeConstraint", "MBSResult", "minimum_bin_slack"]

_FIT_TOL = 1e-9


class PackingConstraint:
    """Incremental feasibility hook for the MBS search.

    Protocol
    --------
    The search drives a constraint through a strict call discipline:

    1. ``accepts(idx)`` is queried *before* item *idx* joins the current
       selection.  It must be a **pure query**: answer "would adding
       *idx* keep the constraint satisfied?" without mutating any state.
       In particular, ``accepts`` returning ``True`` does **not** mean
       the item was added — the search may still reject it (size check)
       or abandon the branch.
    2. ``push(idx)`` is called exactly once when item *idx* actually
       joins the selection.  Only here may running state change.
    3. ``pop(idx)`` is called exactly once when item *idx* leaves the
       selection (backtrack), in reverse push order.  ``pop`` must undo
       exactly what ``push`` did, so that any ``push``/``pop``-balanced
       call sequence leaves the constraint in its initial state.

    The search guarantees ``push``/``pop`` balance even on early exit,
    so a constraint object can be reused across searches.  The base
    class accepts everything.
    """

    def accepts(self, idx: int) -> bool:
        """Would adding item *idx* keep the constraint satisfied?

        Must not mutate state — see the class docstring's protocol.
        """
        return True

    def push(self, idx: int) -> None:
        """Item *idx* was added to the selection."""

    def pop(self, idx: int) -> None:
        """Item *idx* was removed from the selection (backtrack)."""


class MemoryConstraint(PackingConstraint):
    """Total selected memory must not exceed the bin's free memory.

    Sizes and capacity must be finite: a NaN size would otherwise poison
    every ``used + size <= capacity`` comparison into ``False`` and
    silently exclude the item from every selection.
    """

    def __init__(self, memory_sizes: Sequence[float], memory_capacity: float):
        self.sizes = np.asarray(memory_sizes, dtype=float)
        if not np.all(np.isfinite(self.sizes)):
            raise ValueError("memory sizes must be finite (got NaN/inf)")
        if np.any(self.sizes < 0):
            raise ValueError("memory sizes must be non-negative")
        if not np.isfinite(memory_capacity):
            raise ValueError(f"memory_capacity must be finite, got {memory_capacity}")
        if memory_capacity < 0:
            raise ValueError(f"memory_capacity must be >= 0, got {memory_capacity}")
        self.capacity = float(memory_capacity)
        self.used = 0.0

    def accepts(self, idx: int) -> bool:
        return self.used + self.sizes[idx] <= self.capacity + _FIT_TOL

    def push(self, idx: int) -> None:
        self.used += self.sizes[idx]

    def pop(self, idx: int) -> None:
        self.used -= self.sizes[idx]


class CompositeConstraint(PackingConstraint):
    """Conjunction of several constraints.

    ``accepts`` short-circuits: once one member rejects, later members
    are **not** queried.  This is safe precisely because the protocol
    (see :class:`PackingConstraint`) requires ``accepts`` to be a pure
    query — a member that mutated state in ``accepts`` would desync from
    its peers whenever an earlier member rejected.  ``push``/``pop`` are
    always delivered to *every* member (push in order, pop in reverse),
    keeping all members' running state consistent.
    """

    def __init__(self, constraints: Sequence[PackingConstraint]):
        self.constraints = list(constraints)

    def accepts(self, idx: int) -> bool:
        return all(c.accepts(idx) for c in self.constraints)

    def push(self, idx: int) -> None:
        for c in self.constraints:
            c.push(idx)

    def pop(self, idx: int) -> None:
        for c in reversed(self.constraints):
            c.pop(idx)


@dataclass(frozen=True)
class MBSResult:
    """Outcome of a Minimum-Bin-Slack search.

    ``selected`` are indices into the caller's item list (best subset
    found); ``slack`` is the unfilled primary capacity it leaves;
    ``epsilon_used`` is the allowed slack after any escalations;
    ``early_exit`` reports whether the epsilon threshold (rather than
    exhaustion of the search space or the hard step cap) ended the run;
    ``seeded`` reports whether an incumbent seed survived validation and
    primed the search.
    """

    selected: Tuple[int, ...]
    slack: float
    steps: int
    epsilon_used: float
    early_exit: bool
    seeded: bool = False


def minimum_bin_slack(
    primary_sizes: Sequence[float],
    capacity: float,
    constraint: Optional[PackingConstraint] = None,
    epsilon: float = 0.0,
    max_steps: int = 20000,
    epsilon_step: Optional[float] = None,
    hard_step_cap: Optional[int] = None,
    incumbent: Optional[Sequence[int]] = None,
    prune: bool = True,
) -> MBSResult:
    """Select items minimizing one bin's unfilled primary capacity.

    Parameters
    ----------
    primary_sizes:
        Item sizes in the bin's primary dimension (CPU demand, GHz).
    capacity:
        The bin's free primary capacity.
    constraint:
        Optional additional feasibility (e.g. memory) — Algorithm 1's
        generalized per-step check.
    epsilon:
        Allowed slack: the search stops as soon as a selection leaves
        at most this much capacity unused (Algorithm 1 lines 4-5).
    max_steps:
        Steps between epsilon escalations (lines 15-17).  Each
        feasibility evaluation counts as one step.
    epsilon_step:
        Escalation increment; defaults to 5% of ``capacity``.
    hard_step_cap:
        Absolute step bound (defaults to ``50 * max_steps``); the search
        performs **at most exactly this many** feasibility evaluations.
    incumbent:
        Optional starting selection (item indices).  Indices must be in
        range and unique; items that no longer fit (capacity or
        constraint) are dropped from the seed rather than failing the
        search.  The surviving seed becomes the initial incumbent the
        depth-first search must strictly beat.
    prune:
        Enable suffix-sum dominance pruning (see module docstring).
        ``False`` reproduces the exhaustive reference search.
    """
    sizes = np.asarray(primary_sizes, dtype=float)
    if sizes.ndim != 1:
        raise ValueError(f"primary_sizes must be 1-D, got shape {sizes.shape}")
    if np.any(sizes < 0):
        raise ValueError("primary sizes must be non-negative")
    if capacity < 0:
        raise ValueError(f"capacity must be >= 0, got {capacity}")
    if epsilon < 0:
        raise ValueError(f"epsilon must be >= 0, got {epsilon}")
    if max_steps < 1:
        raise ValueError(f"max_steps must be >= 1, got {max_steps}")
    if epsilon_step is None:
        epsilon_step = 0.05 * capacity if capacity > 0 else 1.0
    if hard_step_cap is None:
        hard_step_cap = 50 * max_steps

    n = sizes.shape[0]
    if capacity <= epsilon + _FIT_TOL:
        # The empty selection already meets the allowed slack.
        return MBSResult((), float(capacity), 0, float(epsilon), True)

    best_sel: Tuple[int, ...] = ()
    best_slack = float(capacity)
    seeded = False
    if incumbent is not None and len(incumbent):
        seed, seed_used = _validate_incumbent(sizes, capacity, constraint, incumbent)
        if seed:
            seed_slack = capacity - seed_used
            if seed_slack < best_slack - _FIT_TOL:
                best_slack = float(seed_slack)
                best_sel = tuple(seed)
                seeded = True
        if best_slack <= epsilon + _FIT_TOL:
            # The seed already meets the allowed slack: zero search steps.
            return MBSResult(best_sel, float(best_slack), 0, float(epsilon), True, seeded)

    # Sort once; the DFS walks positions in this order.  Python lists
    # beat NumPy scalar indexing inside the interpreter-bound loop, and
    # binding them (plus the sizes) to locals keeps the inner loop free
    # of attribute lookups and allocations.
    order = sorted(range(n), key=lambda i: -sizes[i])
    sizes_list = [float(s) for s in sizes]
    sorted_sizes = [sizes_list[i] for i in order]
    # suffix[pos] = total size of items at positions >= pos: the best
    # case any branch continuing from pos can still add to the bin.
    suffix = [0.0] * (n + 1)
    for pos in range(n - 1, -1, -1):
        suffix[pos] = suffix[pos + 1] + sorted_sizes[pos]

    steps = 0
    eps_current = float(epsilon)
    early = False
    cap = float(capacity)
    tol = _FIT_TOL
    # A plain MemoryConstraint (the overwhelmingly common case) is
    # inlined: its accept test and running total become local float
    # arithmetic instead of three bound-method calls per node.  Because
    # the search keeps push/pop balanced, never touching the object at
    # all is observationally identical.  Subclasses (overridden hooks)
    # and composites take the generic protocol path.
    mem_fast = type(constraint) is MemoryConstraint
    if mem_fast:
        mem_sizes = constraint.sizes.tolist()
        mem_cap = constraint.capacity
        mem_used = constraint.used
        accepts = push = pop = None
    else:
        accepts = constraint.accepts if constraint is not None else None
        push = constraint.push if constraint is not None else None
        pop = constraint.pop if constraint is not None else None

    path: List[int] = []
    used = 0.0
    # pos_stack[d] = next order-position to try at depth d.
    pos_stack: List[int] = [0]
    exhausted = False  # hard step cap reached

    while pos_stack:
        pos = pos_stack[-1]
        taken = -1
        while pos < n:
            if prune and used + suffix[pos] <= cap - best_slack + tol:
                # Even taking every remaining item cannot strictly beat
                # the incumbent: dominated branch, cut it.
                pos = n
                break
            idx = order[pos]
            size = sorted_sizes[pos]
            pos += 1
            steps += 1
            if steps % max_steps == 0:
                eps_current += epsilon_step  # escalate (Algorithm 1 line 16)
            if used + size > cap + tol:
                if steps >= hard_step_cap:
                    exhausted = True
                    break
                continue
            if mem_fast:
                if mem_used + mem_sizes[idx] > mem_cap + tol:
                    if steps >= hard_step_cap:
                        exhausted = True
                        break
                    continue
            elif accepts is not None and not accepts(idx):
                if steps >= hard_step_cap:
                    exhausted = True
                    break
                continue
            taken = idx
            break
        pos_stack[-1] = pos
        if taken >= 0:
            path.append(taken)
            used += sizes_list[taken]
            if mem_fast:
                mem_used += mem_sizes[taken]
            elif push is not None:
                push(taken)
            slack = cap - used
            if slack < best_slack - tol:
                best_slack = slack
                best_sel = tuple(path)
            if best_slack <= eps_current + tol or steps >= hard_step_cap:
                early = best_slack <= eps_current + tol
                break
            pos_stack.append(pos)
        else:
            if exhausted:
                break
            pos_stack.pop()
            if path:
                last = path.pop()
                used -= sizes_list[last]
                if mem_fast:
                    mem_used -= mem_sizes[last]
                elif pop is not None:
                    pop(last)

    # Unwind constraint state so the object can be reused by the caller.
    if pop is not None:
        while path:
            pop(path.pop())

    return MBSResult(
        selected=best_sel,
        slack=float(best_slack),
        steps=steps,
        epsilon_used=eps_current,
        early_exit=early,
        seeded=seeded,
    )


def _validate_incumbent(
    sizes: np.ndarray,
    capacity: float,
    constraint: Optional[PackingConstraint],
    incumbent: Sequence[int],
) -> Tuple[List[int], float]:
    """Reduce an incumbent seed to a feasible sub-selection.

    Out-of-range indices are a caller bug and raise; items that no
    longer fit are dropped (demands drift between optimizer periods).
    Returns the surviving indices and their total size; the constraint
    object is left in its initial state.
    """
    n = sizes.shape[0]
    survivors: List[int] = []
    used = 0.0
    seen = set()
    try:
        for i in incumbent:
            i = int(i)
            if i < 0 or i >= n:
                raise ValueError(f"incumbent index {i} out of range [0, {n})")
            if i in seen:
                continue
            seen.add(i)
            if used + sizes[i] > capacity + _FIT_TOL:
                continue
            if constraint is not None and not constraint.accepts(i):
                continue
            survivors.append(i)
            used += float(sizes[i])
            if constraint is not None:
                constraint.push(i)
    finally:
        if constraint is not None:
            for i in reversed(survivors):
                constraint.pop(i)
    return survivors, used
