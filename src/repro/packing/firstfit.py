"""First-fit bin packing with vector (multi-dimensional) sizes.

Sizes and capacities are 1-D NumPy-compatible vectors; an item fits a
bin when *every* dimension fits.  For this library dimension 0 is CPU
demand (GHz) and dimension 1 is memory (MB), but the functions are
agnostic.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

__all__ = ["first_fit", "first_fit_decreasing", "best_fit_decreasing"]


def _as_matrix(rows: Sequence[Sequence[float]], name: str) -> np.ndarray:
    arr = np.atleast_2d(np.asarray(rows, dtype=float))
    if arr.size == 0:
        arr = arr.reshape(0, arr.shape[1] if arr.ndim == 2 and arr.shape[1] else 0)
    if arr.size and np.any(arr < 0):
        raise ValueError(f"{name} must be non-negative")
    return arr


def first_fit(
    item_sizes: Sequence[Sequence[float]],
    bin_capacities: Sequence[Sequence[float]],
    bin_used: Optional[Sequence[Sequence[float]]] = None,
) -> List[Optional[int]]:
    """Assign each item (in given order) to the first bin it fits.

    Parameters
    ----------
    item_sizes:
        ``(n_items, d)`` size vectors.
    bin_capacities:
        ``(n_bins, d)`` capacity vectors.
    bin_used:
        Optional ``(n_bins, d)`` already-consumed capacity (bins may be
        partially full — the incremental case).

    Returns
    -------
    list of assigned bin indices, ``None`` where no bin fits.  Updates
    nothing in place.
    """
    items = _as_matrix(item_sizes, "item_sizes")
    caps = _as_matrix(bin_capacities, "bin_capacities")
    if items.size and caps.size and items.shape[1] != caps.shape[1]:
        raise ValueError(
            f"dimension mismatch: items {items.shape} vs bins {caps.shape}"
        )
    used = (
        np.zeros_like(caps)
        if bin_used is None
        else _as_matrix(bin_used, "bin_used").copy()
    )
    if used.shape != caps.shape:
        raise ValueError(f"bin_used shape {used.shape} != capacities {caps.shape}")
    out: List[Optional[int]] = []
    eps = 1e-9
    n_bins = caps.shape[0]
    for size in items:
        placed = None
        if n_bins:
            ok = np.all(used + size <= caps + eps, axis=1)
            first = int(np.argmax(ok))
            if ok[first]:
                used[first] += size
                placed = first
        out.append(placed)
    return out


def first_fit_decreasing(
    item_sizes: Sequence[Sequence[float]],
    bin_capacities: Sequence[Sequence[float]],
    bin_used: Optional[Sequence[Sequence[float]]] = None,
    sort_dim: int = 0,
) -> List[Optional[int]]:
    """First-fit after sorting items by decreasing size in ``sort_dim``.

    Returns assignments in the *original* item order.
    """
    items = _as_matrix(item_sizes, "item_sizes")
    if items.shape[0] == 0:
        return []
    order = np.argsort(-items[:, sort_dim], kind="stable")
    assigned_sorted = first_fit(items[order], bin_capacities, bin_used)
    out: List[Optional[int]] = [None] * items.shape[0]
    for pos, original in enumerate(order):
        out[int(original)] = assigned_sorted[pos]
    return out


def best_fit_decreasing(
    item_sizes: Sequence[Sequence[float]],
    bin_capacities: Sequence[Sequence[float]],
    bin_used: Optional[Sequence[Sequence[float]]] = None,
    sort_dim: int = 0,
) -> List[Optional[int]]:
    """Best-fit decreasing: each item goes to the feasible bin with the
    least remaining ``sort_dim`` capacity after placement (tightest fit).

    Returns assignments in the original item order.
    """
    items = _as_matrix(item_sizes, "item_sizes")
    caps = _as_matrix(bin_capacities, "bin_capacities")
    if items.shape[0] == 0:
        return []
    if items.shape[1] != caps.shape[1]:
        raise ValueError(
            f"dimension mismatch: items {items.shape} vs bins {caps.shape}"
        )
    used = (
        np.zeros_like(caps)
        if bin_used is None
        else _as_matrix(bin_used, "bin_used").copy()
    )
    order = np.argsort(-items[:, sort_dim], kind="stable")
    out: List[Optional[int]] = [None] * items.shape[0]
    eps = 1e-9
    n_bins = caps.shape[0]
    for original in order:
        size = items[int(original)]
        if not n_bins:
            continue
        ok = np.all(used + size <= caps + eps, axis=1)
        if not ok.any():
            continue
        left = caps[:, sort_dim] - used[:, sort_dim] - size[sort_dim]
        left[~ok] = np.inf
        best_bin = int(np.argmin(left))
        used[best_bin] += size
        out[int(original)] = best_bin
    return out
