"""The ``repro-serve`` entry point.

``serve`` runs the control-plane service in the foreground (SIGTERM and
Ctrl-C shut it down gracefully: in-flight runs are checkpointed into
the store and requeued, event logs are flushed and closed, and a later
``serve`` resumes them to bit-identical results).  The other
subcommands are thin HTTP clients against a running service:

* ``submit SCENARIO`` — queue one run (``--set params.seed=7`` applies
  dotted-path overrides; ``--wait`` polls to completion and exits
  non-zero if the run failed);
* ``status [RUN_ID]`` — one run, or a queue/status overview;
* ``results RUN_ID`` — the stored result summary (``--audit`` fetches
  the audit report instead and exits 1 when the SLO audit failed,
  mirroring ``repro-obs audit``);
* ``sweep SCENARIO --set params.seed=1,2,3 ...`` — expand a parameter
  grid server-side into one job per configuration.

SCENARIO is a registered name (``repro-scenario list``) or a path to a
spec JSON file — the same resolution every other CLI uses.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional

from repro.util.logsetup import add_verbosity_flags, configure_logging

__all__ = ["main"]

DEFAULT_URL = "http://127.0.0.1:8642"


# -- HTTP client helpers ----------------------------------------------


def _request(
    method: str, url: str, body: Optional[Dict[str, Any]] = None
) -> Any:
    data = None if body is None else json.dumps(body).encode()
    req = urllib.request.Request(url, data=data, method=method)
    if data is not None:
        req.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(req, timeout=60) as resp:
            payload = resp.read()
    except urllib.error.HTTPError as exc:
        detail = exc.read().decode(errors="replace").strip()
        try:
            detail = json.loads(detail).get("error", detail)
        except ValueError:
            pass
        print(f"repro-serve: {exc.code} {exc.reason}: {detail}", file=sys.stderr)
        raise SystemExit(1)
    except urllib.error.URLError as exc:
        print(
            f"repro-serve: cannot reach {url}: {exc.reason} "
            "(is the service running? see 'repro-serve serve')",
            file=sys.stderr,
        )
        raise SystemExit(1)
    if not payload:
        return None
    return json.loads(payload)


def _parse_value(text: str) -> Any:
    """A --set value: JSON when it parses, bare string otherwise."""
    try:
        return json.loads(text)
    except ValueError:
        return text


def _parse_sets(pairs: List[str], grid: bool) -> Dict[str, Any]:
    """``--set path=value`` pairs; with *grid*, values are comma lists."""
    out: Dict[str, Any] = {}
    for pair in pairs:
        path, sep, raw = pair.partition("=")
        if not sep or not path:
            raise SystemExit(f"repro-serve: --set needs PATH=VALUE, got {pair!r}")
        if grid:
            out[path] = [_parse_value(v) for v in raw.split(",") if v != ""]
        else:
            out[path] = _parse_value(raw)
    return out


def _scenario_body(scenario: str, overrides: Dict[str, Any]) -> Dict[str, Any]:
    """Request body for a scenario argument (registry name or file path)."""
    body: Dict[str, Any]
    try:
        with open(scenario, "r", encoding="utf-8") as fh:
            body = {"spec": json.load(fh)}
    except OSError:
        body = {"scenario": scenario}
    except ValueError as exc:
        raise SystemExit(f"repro-serve: {scenario} is not JSON: {exc}")
    if overrides:
        body["overrides"] = overrides
    return body


def _wait_for_runs(url: str, run_ids: List[int], poll_s: float) -> List[dict]:
    """Poll until every run id is terminal; returns the final documents."""
    done: Dict[int, dict] = {}
    while len(done) < len(run_ids):
        for run_id in run_ids:
            if run_id in done:
                continue
            doc = _request("GET", f"{url}/api/runs/{run_id}")
            if doc["status"] in ("done", "failed", "cancelled"):
                done[run_id] = doc
        if len(done) < len(run_ids):
            time.sleep(poll_s)
    return [done[run_id] for run_id in run_ids]


# -- subcommands -------------------------------------------------------


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.obs import install_sigterm_flush
    from repro.service.api import ControlPlaneService, ServiceConfig

    install_sigterm_flush()  # SIGTERM -> SystemExit -> graceful path below
    service = ControlPlaneService(ServiceConfig(
        db_path=args.db,
        data_dir=args.data_dir,
        host=args.host,
        port=args.port,
        workers=args.workers,
        checkpoint_every=args.checkpoint_every,
        audit_violation_budget=args.audit_violation_budget,
    ))
    print(
        f"repro-serve: listening on {service.url} "
        f"({args.workers} workers, store {args.db})",
        flush=True,
    )
    try:
        service.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        print(
            "repro-serve: shutting down (checkpointing in-flight runs)",
            file=sys.stderr, flush=True,
        )
        service.shutdown(graceful=True)
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    body = _scenario_body(args.scenario, _parse_sets(args.set, grid=False))
    if args.force:
        body["force"] = True
    doc = _request("POST", f"{args.url}/api/runs", body)
    run = doc["run"]
    cached = " (cached)" if doc.get("cached") else ""
    print(f"run {run['id']}: {run['name']} [{run['status']}]{cached}")
    if not args.wait:
        return 0
    final = _wait_for_runs(args.url, [int(run["id"])], args.poll)[0]
    print(f"run {final['id']}: {final['status']}"
          + (f" — {final['error']}" if final.get("error") else ""))
    if args.json:
        print(json.dumps(final, indent=2))
    return 0 if final["status"] == "done" else 1


def _cmd_status(args: argparse.Namespace) -> int:
    if args.run_id is not None:
        doc = _request("GET", f"{args.url}/api/runs/{args.run_id}")
        print(json.dumps(doc, indent=2))
        return 0
    health = _request("GET", f"{args.url}/api/health")
    if args.json:
        print(json.dumps(health, indent=2))
        return 0
    runs = health["runs"]
    print(
        f"service ok — {health['busy_workers']}/{health['workers']} workers busy, "
        + ", ".join(f"{runs[s]} {s}" for s in sorted(runs) if runs[s])
    )
    for run in _request("GET", f"{args.url}/api/runs"):
        progress = ""
        if run["n_periods"]:
            progress = f" {run['periods_done']}/{run['n_periods']}"
        print(f"  run {run['id']:>4} {run['status']:>10}{progress}  {run['name']}")
    return 0


def _cmd_results(args: argparse.Namespace) -> int:
    if args.audit:
        doc = _request("GET", f"{args.url}/api/runs/{args.run_id}/audit")
        print(json.dumps(doc, indent=2))
        return 0 if doc["passed"] else 1
    doc = _request("GET", f"{args.url}/api/runs/{args.run_id}/result")
    print(json.dumps(doc, indent=2))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    grid = _parse_sets(args.set, grid=True)
    if not grid:
        raise SystemExit("repro-serve: sweep needs at least one --set PATH=V1,V2,...")
    body = _scenario_body(args.scenario, {})
    body["grid"] = grid
    if args.name:
        body["name"] = args.name
    doc = _request("POST", f"{args.url}/api/sweeps", body)
    sweep, run_ids = doc["sweep"], doc["run_ids"]
    print(f"sweep {sweep['id']}: {sweep['name']} — {sweep['n_jobs']} jobs queued")
    if not args.wait:
        return 0
    finals = _wait_for_runs(args.url, [int(i) for i in run_ids], args.poll)
    n_done = sum(1 for d in finals if d["status"] == "done")
    print(f"sweep {sweep['id']}: {n_done}/{len(finals)} done")
    for doc in finals:
        if doc["status"] != "done":
            print(f"  run {doc['id']}: {doc['status']} — {doc.get('error')}")
    return 0 if n_done == len(finals) else 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Run (or talk to) the long-running control-plane "
        "service: HTTP API + experiment runner + SQLite results store "
        "(see docs/SERVICE.md).",
    )
    add_verbosity_flags(parser)
    sub = parser.add_subparsers(dest="command", required=True)

    p_serve = sub.add_parser("serve", help="run the service in the foreground")
    p_serve.add_argument("--db", default="repro-service.db",
                         help="SQLite results-store path")
    p_serve.add_argument("--data-dir", default="repro-service-data",
                         help="directory for per-run event logs")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8642)
    p_serve.add_argument("--workers", type=int, default=2,
                         help="concurrent experiment workers")
    p_serve.add_argument("--checkpoint-every", type=int, default=5, metavar="K",
                         help="checkpoint in-flight runs every K periods")
    p_serve.add_argument("--audit-violation-budget", type=float, default=1.0,
                         help="violation budget for the per-run SLO audit "
                         "(default 1.0: record, don't fail, short runs)")
    p_serve.set_defaults(func=_cmd_serve)

    def _client_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument("--url", default=DEFAULT_URL,
                       help=f"service base URL (default {DEFAULT_URL})")

    p_sub = sub.add_parser("submit", help="queue one scenario run")
    p_sub.add_argument("scenario", help="registered name or spec JSON path")
    p_sub.add_argument("--set", action="append", default=[], metavar="PATH=VALUE",
                       help="dotted-path override, e.g. params.seed=7 "
                       "(repeatable)")
    p_sub.add_argument("--force", action="store_true",
                       help="queue even if an identical spec already ran")
    p_sub.add_argument("--wait", action="store_true",
                       help="poll until the run finishes; exit 1 on failure")
    p_sub.add_argument("--poll", type=float, default=0.5,
                       help="poll interval for --wait (seconds)")
    p_sub.add_argument("--json", action="store_true",
                       help="with --wait: print the final run document")
    _client_flags(p_sub)
    p_sub.set_defaults(func=_cmd_submit)

    p_stat = sub.add_parser("status", help="service overview or one run")
    p_stat.add_argument("run_id", nargs="?", type=int, default=None)
    p_stat.add_argument("--json", action="store_true")
    _client_flags(p_stat)
    p_stat.set_defaults(func=_cmd_status)

    p_res = sub.add_parser("results", help="fetch a finished run's results")
    p_res.add_argument("run_id", type=int)
    p_res.add_argument("--audit", action="store_true",
                       help="fetch the SLO/power audit report instead; "
                       "exit 1 when the audit failed")
    _client_flags(p_res)
    p_res.set_defaults(func=_cmd_results)

    p_sweep = sub.add_parser(
        "sweep", help="submit a parameter-grid sweep (one job per config)"
    )
    p_sweep.add_argument("scenario", help="registered name or spec JSON path")
    p_sweep.add_argument("--set", action="append", default=[],
                         metavar="PATH=V1,V2,...",
                         help="grid axis: dotted path and comma-separated "
                         "values (repeatable; cartesian product)")
    p_sweep.add_argument("--name", default=None, help="sweep label")
    p_sweep.add_argument("--wait", action="store_true",
                         help="poll until every job finishes; exit 1 if any "
                         "failed")
    p_sweep.add_argument("--poll", type=float, default=0.5)
    _client_flags(p_sweep)
    p_sweep.set_defaults(func=_cmd_sweep)

    args = parser.parse_args(argv)
    configure_logging(args.verbose, args.quiet)
    # Ctrl-C on a client subcommand should not dump a traceback.
    if args.command != "serve":
        signal.signal(signal.SIGINT, signal.default_int_handler)
    return int(args.func(args))


if __name__ == "__main__":
    sys.exit(main())
