"""Grid-sweep expansion: parameter overrides over a base scenario.

A sweep is a base :class:`~repro.engine.scenario.ScenarioSpec` document
plus a **grid**: a mapping from dotted override paths to lists of
values, e.g.::

    {
        "params.seed": [1, 2, 3, 4, 5],
        "params.concurrency": [8, 12],
        "params.duration_s": [120.0],
    }

:func:`expand_grid` takes the cartesian product (here 5 x 2 x 1 = 10
configurations), applies each combination to a deep copy of the base
document, and validates every resulting spec — so a sweep either
expands completely or fails with the first invalid configuration named.
Grid keys are processed in sorted order and values in the order given,
so job numbering is deterministic.

Dotted paths address nested sections of the spec document
(``params.seed``, ``trace.n_days``, ``workloads.1.high`` …).
Intermediate objects must already exist in the base — a typo'd path is
an error, not a silently ignored override.
"""

from __future__ import annotations

import copy
import itertools
from typing import Any, Dict, List, Mapping, Sequence, Tuple

from repro.engine.scenario import ScenarioSpec

__all__ = ["MAX_SWEEP_JOBS", "SweepError", "apply_overrides", "expand_grid"]

#: Refuse to expand a sweep bigger than this (a typo in a grid list is
#: much more likely than a genuine 10k-job submission).
MAX_SWEEP_JOBS = 4096


class SweepError(ValueError):
    """A sweep document cannot be expanded into valid scenario specs."""


def apply_overrides(
    base_doc: Mapping[str, Any], overrides: Mapping[str, Any]
) -> Dict[str, Any]:
    """A deep copy of *base_doc* with each dotted-path override applied."""
    doc: Dict[str, Any] = copy.deepcopy(dict(base_doc))
    for path, value in overrides.items():
        parts = [p for p in str(path).split(".") if p]
        if not parts:
            raise SweepError(f"empty override path {path!r}")
        target: Any = doc
        for part in parts[:-1]:
            if not isinstance(target, dict):
                raise SweepError(
                    f"override path {path!r} descends through a non-object"
                )
            if part not in target:
                # Only the top-level sections may spring into existence
                # (a base spec without params/workloads is legal); a
                # missing *nested* key is almost certainly a typo.
                if target is doc and part in ("params", "workloads", "trace",
                                              "model", "faults"):
                    target[part] = {}
                else:
                    raise SweepError(
                        f"override path {path!r}: {part!r} does not exist "
                        "in the base spec"
                    )
            target = target[part]
        if not isinstance(target, dict):
            raise SweepError(f"override path {path!r} descends through a non-object")
        target[parts[-1]] = value
    return doc


def expand_grid(
    base_doc: Mapping[str, Any],
    grid: Mapping[str, Sequence[Any]],
    validate: bool = True,
) -> List[Tuple[Dict[str, Any], Dict[str, Any]]]:
    """Expand *grid* over *base_doc* into ``(spec_doc, overrides)`` pairs.

    Returns one pair per configuration, in deterministic order (grid
    keys sorted, values in given order).  With ``validate`` (default),
    every expanded document must parse and validate as a
    :class:`ScenarioSpec`; the first problem aborts the whole expansion.
    """
    if not isinstance(grid, Mapping) or not grid:
        raise SweepError("grid must be a non-empty object of path -> values")
    keys = sorted(str(k) for k in grid)
    value_lists: List[List[Any]] = []
    n_jobs = 1
    for key in keys:
        values = grid[key]
        if isinstance(values, (str, bytes)) or not isinstance(values, Sequence):
            raise SweepError(f"grid[{key!r}] must be a list of values")
        if not values:
            raise SweepError(f"grid[{key!r}] is empty")
        value_lists.append(list(values))
        n_jobs *= len(values)
    if n_jobs > MAX_SWEEP_JOBS:
        raise SweepError(
            f"sweep expands to {n_jobs} jobs, more than the "
            f"{MAX_SWEEP_JOBS}-job limit"
        )
    jobs: List[Tuple[Dict[str, Any], Dict[str, Any]]] = []
    for combo in itertools.product(*value_lists):
        overrides = dict(zip(keys, combo))
        doc = apply_overrides(base_doc, overrides)
        if validate:
            spec = ScenarioSpec.from_dict(doc)
            problems = spec.validate()
            if problems:
                raise SweepError(
                    f"configuration {overrides} is invalid:\n  "
                    + "\n  ".join(problems)
                )
        jobs.append((doc, overrides))
    return jobs
