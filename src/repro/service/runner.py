"""The experiment runner: a worker pool over the results store.

Workers claim queued runs from the :class:`~repro.service.store.ResultsStore`,
build the scenario's ``(engine, backend)`` pair, and drive the
:class:`~repro.engine.kernel.ControlPlane` kernel with a per-period
hook that

* writes a **checkpoint** (kernel document + event-log byte offset)
  into the store every ``checkpoint_every`` periods,
* honours **cancellation** requested through the store, and
* stops at a period boundary on **graceful shutdown**, checkpointing
  the in-flight run and putting it back in the queue.

Every run gets its own telemetry: a
:class:`~repro.obs.backends.JsonlBackend` event log under the data
directory, installed thread-locally so concurrent workers never mix
streams.  When a run finishes, the runner hashes the event log exactly
the way the golden-hash tests do (span and metrics records excluded),
stores a JSON result summary, and runs the
:mod:`repro.obs.audit` pipeline over the log, storing the report.

Crash recovery
--------------
On startup the runner requeues any run still marked ``running`` (the
residue of a SIGKILL or crash — this process owns every worker, so
nothing else can legitimately be running).  A requeued run with a
checkpoint resumes: the event log is **truncated to the offset the
checkpoint recorded** (discarding events from periods after the
snapshot, including any torn final line), the kernel restores — replay
re-execution for the DES testbed, direct state for the large-scale
plant — and the completed log hashes bit-identical to an uninterrupted
one-shot run (pinned in ``tests/test_service_runner.py``).
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import threading
import time
import traceback
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.engine.kernel import ControlPlane, PeriodContext
from repro.engine.scenario import ScenarioSpec
from repro.obs import (
    AuditConfig,
    JsonlBackend,
    Telemetry,
    audit_jsonl,
    read_jsonl_lenient,
    set_telemetry,
)
from repro.service.store import ResultsStore, RunRow

__all__ = [
    "ExperimentRunner",
    "RunnerConfig",
    "eventlog_hash",
    "summarize_run_result",
]

logger = logging.getLogger(__name__)

#: Record kinds excluded from the golden event-log hash — identical to
#: the filter in tests/test_scenarios.py::_eventlog_hash, so a service
#: run's hash is directly comparable to a one-shot CLI run's.
HASH_EXCLUDED_KINDS = ("span", "metrics")


def eventlog_hash(path: Union[str, Path]) -> Tuple[str, int]:
    """``(sha256, n_events)`` over a run's non-span/metrics records."""
    records, _ = read_jsonl_lenient(path)
    events = [r for r in records if r.get("kind") not in HASH_EXCLUDED_KINDS]
    digest = hashlib.sha256(
        json.dumps(events, sort_keys=True, default=str).encode()
    ).hexdigest()
    return digest, len(events)


def _jsonable(value: Any) -> Any:
    """Numpy scalars/arrays and mappings -> plain JSON values."""
    if isinstance(value, Mapping):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if hasattr(value, "tolist"):
        return value.tolist()
    if hasattr(value, "item"):
        return value.item()
    return value


def summarize_run_result(spec: ScenarioSpec, result: Any) -> Dict[str, Any]:
    """A compact JSON result summary for the store / HTTP API.

    Keeps the cross-harness headline numbers (energy, power, SLO
    tracking) and drops bulky series — the event log holds the full
    record stream for anything deeper.
    """
    if spec.harness == "testbed":
        recorder = result.recorder
        apps: Dict[str, Any] = {}
        for name in recorder.names():
            if name.startswith("rt/"):
                apps[name[len("rt/"):]] = recorder.summary(name)
        summary: Dict[str, Any] = {
            "harness": "testbed",
            "power_w": recorder.summary("power/total"),
            "rt_ms": apps,
            "sysid_r2": result.sysid_r2,
        }
        if result.attribution is not None:
            summary["attribution"] = result.attribution
        return _jsonable(summary)
    summary = {
        "harness": "largescale",
        "scheme": result.scheme,
        "n_vms": result.n_vms,
        "n_steps": result.n_steps,
        "step_s": result.step_s,
        "total_energy_wh": result.total_energy_wh,
        "energy_per_vm_wh": result.energy_per_vm_wh,
        "migrations": result.migrations,
        "mean_active_servers": result.mean_active_servers,
        "max_active_servers": result.max_active_servers,
        "overload_server_steps": result.overload_server_steps,
        "unplaced_vm_steps": result.unplaced_vm_steps,
        "info": dict(result.info),
    }
    if result.attribution is not None:
        summary["attribution"] = result.attribution
    return _jsonable(summary)


@dataclass(frozen=True)
class RunnerConfig:
    """Experiment-runner knobs.

    ``crash_after_checkpoints`` is deterministic crash injection for
    the resume tests: after that many checkpoints the worker dies
    mid-run *without* requeueing (exactly what a SIGKILL leaves
    behind), so kill-and-resume is testable without real signals.
    """

    data_dir: Union[str, Path] = "repro-service-data"
    workers: int = 2
    checkpoint_every: int = 5
    poll_interval_s: float = 0.2
    audit_violation_budget: float = 1.0
    audit_baseline_rule: str = "peak"
    crash_after_checkpoints: Optional[int] = None

    def __post_init__(self):
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1, got {self.checkpoint_every}"
            )


class _HardStop(Exception):
    """Injected crash (``crash_after_checkpoints``): die without cleanup."""


class _Job:
    """Mutable per-run state shared between the loop and its hook."""

    def __init__(self, run: RunRow):
        self.run = run
        self.n_checkpoints = 0
        self.outcome: Optional[str] = None  # None=ran to completion


class ExperimentRunner:
    """Worker pool executing queued runs from a results store."""

    def __init__(self, store: ResultsStore, config: Optional[RunnerConfig] = None):
        self.store = store
        self.config = config or RunnerConfig()
        self.data_dir = Path(self.config.data_dir)
        self._threads: List[threading.Thread] = []
        self._stop = threading.Event()
        self._graceful = True
        self._busy = 0
        self._busy_lock = threading.Lock()
        self.n_completed = 0
        self.n_resumed = 0

    # -- lifecycle -----------------------------------------------------

    def start(self) -> int:
        """Recover stale runs and launch the worker threads.

        Returns the number of stale 'running' rows requeued.
        """
        if self._threads:
            raise RuntimeError("runner already started")
        self.data_dir.mkdir(parents=True, exist_ok=True)
        recovered = self.store.recover_stale_running()
        if recovered:
            logger.info("requeued %d interrupted run(s) for resume", recovered)
        self._stop.clear()
        for i in range(self.config.workers):
            thread = threading.Thread(
                target=self._worker_loop, args=(f"worker-{i}",),
                name=f"repro-runner-{i}", daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        return recovered

    def stop(self, graceful: bool = True, timeout_s: float = 60.0) -> None:
        """Stop the workers.

        ``graceful`` (default) lets each in-flight run reach its next
        period boundary, checkpoints it into the store, and requeues it
        so a later runner resumes where it left off.  ``graceful=False``
        abandons in-flight runs as 'running' (crash semantics; startup
        recovery will requeue them).
        """
        self._graceful = graceful
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout=timeout_s)
        self._threads = []

    @property
    def busy_workers(self) -> int:
        """Workers currently executing a run."""
        return self._busy

    @property
    def idle(self) -> bool:
        """True when no worker is executing and the queue is empty."""
        return self._busy == 0 and not self.store.list_runs(status="queued", limit=1)

    def wait_idle(self, timeout_s: float = 120.0) -> bool:
        """Block until the queue drains and all workers are idle."""
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if self.idle:
                return True
            time.sleep(self.config.poll_interval_s / 2)
        return self.idle

    # -- worker loop ---------------------------------------------------

    def _worker_loop(self, worker: str) -> None:
        while not self._stop.is_set():
            try:
                run = self.store.claim_run(worker)
            except Exception:
                logger.exception("%s: claim failed", worker)
                time.sleep(self.config.poll_interval_s)
                continue
            if run is None:
                self._stop.wait(self.config.poll_interval_s)
                continue
            with self._busy_lock:
                self._busy += 1
            try:
                self._execute(run, worker)
            except _HardStop:
                logger.warning("%s: injected crash on run %d", worker, run.id)
                return  # die like a killed process: no cleanup at all
            except Exception as exc:
                logger.exception("%s: run %d failed", worker, run.id)
                try:
                    self.store.finish_run(
                        run.id, "failed",
                        error="".join(
                            traceback.format_exception_only(type(exc), exc)
                        ).strip(),
                    )
                except Exception:
                    logger.exception("%s: could not record failure", worker)
            finally:
                with self._busy_lock:
                    self._busy -= 1

    # -- executing one run ---------------------------------------------

    def run_paths(self, run_id: int) -> Tuple[Path, Path]:
        """(run directory, event-log path) for a run id."""
        run_dir = self.data_dir / f"run-{run_id:06d}"
        return run_dir, run_dir / "events.jsonl"

    def _execute(self, run: RunRow, worker: str) -> None:
        spec = ScenarioSpec.from_dict(run.spec)
        run_dir, log_path = self.run_paths(run.id)
        run_dir.mkdir(parents=True, exist_ok=True)

        checkpoint = self.store.latest_checkpoint(run.id)
        resuming = checkpoint is not None
        if resuming and log_path.exists():
            # Drop events from periods after the snapshot (and any torn
            # final line): the resumed suffix re-emits them.
            with open(log_path, "r+", encoding="utf-8") as fh:
                fh.truncate(checkpoint.log_offset)
        elif resuming:
            # The log vanished; the prefix cannot be reconstructed, so
            # restart from scratch instead of resuming into a hole.
            logger.warning(
                "run %d: checkpoint exists but %s is missing; restarting",
                run.id, log_path,
            )
            checkpoint = None
            resuming = False

        engine, plant = spec.build()
        job = _Job(run)
        backend = JsonlBackend(log_path, mode="a" if resuming else "w")
        telemetry = Telemetry(backend)
        previous = set_telemetry(telemetry)
        try:
            if resuming and checkpoint is not None:
                engine.restore(checkpoint.doc)  # replay resume mutes itself
                self.n_resumed += 1
                logger.info(
                    "%s: resumed run %d at period %d/%d",
                    worker, run.id, engine.k, engine.n_periods,
                )
            else:
                plant.start()
            self.store.update_progress(
                run.id, engine.k, n_periods=engine.n_periods,
                event_log=str(log_path),
            )
            engine.run(on_period=self._make_hook(job, engine, telemetry, log_path))
            if job.outcome == "shutdown":
                self._checkpoint(job, engine, telemetry, log_path)
                self.store.requeue_run(run.id)
                logger.info(
                    "%s: checkpointed and requeued run %d at period %d",
                    worker, run.id, engine.k,
                )
                return
            if job.outcome == "cancelled":
                telemetry.close()
                self.store.finish_run(run.id, "cancelled")
                return
            result = plant.result()
            telemetry.close()  # final metrics record + flush/close
            digest, n_events = eventlog_hash(log_path)
            self.store.finish_run(
                run.id, "done",
                result=summarize_run_result(spec, result),
                event_hash=digest, n_events=n_events,
            )
            self.store.update_progress(run.id, engine.k)
            self._audit(run.id, log_path)
            self.n_completed += 1
            logger.info("%s: run %d done (%d events, %s)",
                        worker, run.id, n_events, digest[:12])
        finally:
            set_telemetry(previous)
            telemetry.close()  # no-op when already closed

    def _make_hook(
        self, job: _Job, engine: ControlPlane, telemetry: Telemetry, log_path: Path
    ):
        checkpoint_every = self.config.checkpoint_every

        def on_period(eng: ControlPlane, ctx: PeriodContext):
            if self._stop.is_set():
                if not self._graceful:
                    raise _HardStop()
                job.outcome = "shutdown"
                return False
            if self.store.run_status(job.run.id) == "cancelling":
                job.outcome = "cancelled"
                return False
            if not eng.finished and eng.k % checkpoint_every == 0:
                self._checkpoint(job, eng, telemetry, log_path)
                crash_after = self.config.crash_after_checkpoints
                if crash_after is not None and job.n_checkpoints >= crash_after:
                    raise _HardStop()
            return True

        return on_period

    def _checkpoint(
        self, job: _Job, engine: ControlPlane, telemetry: Telemetry, log_path: Path
    ) -> None:
        """Snapshot the kernel + the event-log high-water mark."""
        telemetry.flush()
        offset = os.path.getsize(log_path)
        self.store.save_checkpoint(
            job.run.id, engine.k, engine.checkpoint(), offset
        )
        self.store.update_progress(job.run.id, engine.k)
        job.n_checkpoints += 1

    def _audit(self, run_id: int, log_path: Path) -> None:
        """Run the SLO/power audit over the finished log; store the report."""
        try:
            report = audit_jsonl(log_path, AuditConfig(
                baseline_rule=self.config.audit_baseline_rule,
                violation_budget=self.config.audit_violation_budget,
            ))
        except (OSError, ValueError) as exc:
            logger.warning("run %d: audit failed: %s", run_id, exc)
            return
        self.store.save_audit(run_id, report, bool(report["slo"]["passed"]))
