"""The long-running control-plane service.

Layers (mirroring the SimCash api/experiments/persistence split):

* :mod:`repro.service.store` — the persistence layer: a SQLite results
  store (WAL mode, schema-versioned migrations, typed query helpers)
  holding runs, scenario specs, checkpoints, result summaries, and
  audit reports;
* :mod:`repro.service.sweep` — grid-sweep expansion: parameter
  overrides over a base :class:`~repro.engine.scenario.ScenarioSpec`,
  expanded into one job per configuration;
* :mod:`repro.service.runner` — the experiment runner: a worker pool
  that claims queued jobs from the store, executes each through the
  :class:`~repro.engine.kernel.ControlPlane` kernel with periodic
  checkpointing, audits the finished event log, and resumes interrupted
  jobs after a crash or restart to bit-identical final hashes;
* :mod:`repro.service.api` — a thin stdlib HTTP API (submit a spec or a
  sweep, poll status, stream/follow telemetry, fetch results and audit
  reports, cancel, Prometheus ``/metrics``);
* :mod:`repro.service.cli` — the ``repro-serve`` entry point
  (``serve`` / ``submit`` / ``status`` / ``results`` / ``sweep``) with
  graceful SIGTERM shutdown that checkpoints in-flight runs.

See ``docs/SERVICE.md`` for the API reference, the sweep spec format,
and the persistence schema.
"""

from repro.service.runner import ExperimentRunner, RunnerConfig, eventlog_hash
from repro.service.store import (
    AuditRow,
    CheckpointRow,
    ResultsStore,
    RunRow,
    StoreError,
    SweepRow,
)
from repro.service.sweep import SweepError, expand_grid

__all__ = [
    "AuditRow",
    "CheckpointRow",
    "ExperimentRunner",
    "ResultsStore",
    "RunRow",
    "RunnerConfig",
    "StoreError",
    "SweepError",
    "SweepRow",
    "eventlog_hash",
    "expand_grid",
]
