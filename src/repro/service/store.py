"""The persistence layer: a SQLite results store.

One :class:`ResultsStore` holds everything the control-plane service
knows: submitted runs (with their full scenario spec JSON), grid
sweeps, mid-run checkpoints, result summaries, and SLO/power audit
reports.  Plain stdlib ``sqlite3`` — no new dependencies:

* **WAL mode** so the HTTP API (readers) and runner workers (writers)
  coexist without blocking each other;
* **schema-versioned migrations** — the version lives in
  ``PRAGMA user_version`` and every upgrade step is an entry in
  :data:`MIGRATIONS`, applied in order inside one transaction each;
* **typed query helpers** — rows come back as frozen dataclasses
  (:class:`RunRow`, :class:`SweepRow`, :class:`CheckpointRow`,
  :class:`AuditRow`), never raw tuples;
* **per-thread connections** — ``sqlite3`` connections are not
  thread-safe, so the store hands each thread its own (workers and the
  HTTP server threads all share one store object).

Submission is **idempotent** by default: the canonical JSON of a spec
is hashed (:func:`spec_hash`) and re-submitting an identical spec
returns the existing non-failed run instead of queuing a duplicate.

The job-queue claim (:meth:`ResultsStore.claim_run`) is a single
``UPDATE ... RETURNING`` over the oldest queued row inside an immediate
transaction, so two workers can never claim the same run.
"""

from __future__ import annotations

import hashlib
import json
import sqlite3
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

__all__ = [
    "SCHEMA_VERSION",
    "MIGRATIONS",
    "AuditRow",
    "CheckpointRow",
    "ResultsStore",
    "RunRow",
    "StoreError",
    "SweepRow",
    "spec_hash",
    "ACTIVE_STATUSES",
    "TERMINAL_STATUSES",
]


class StoreError(RuntimeError):
    """The store cannot service the request (bad schema, bad state)."""


#: Statuses a run moves through.  queued -> running -> done/failed;
#: cancel requests take running -> cancelling -> cancelled (queued runs
#: cancel immediately); a graceful shutdown or crash recovery puts
#: running back to queued (the latest checkpoint resumes it).
ACTIVE_STATUSES: Tuple[str, ...] = ("queued", "running", "cancelling")
TERMINAL_STATUSES: Tuple[str, ...] = ("done", "failed", "cancelled")

_ALL_STATUSES = ACTIVE_STATUSES + TERMINAL_STATUSES

_DDL_V1 = """
CREATE TABLE sweeps (
    id         INTEGER PRIMARY KEY,
    name       TEXT NOT NULL,
    base_json  TEXT NOT NULL,
    grid_json  TEXT NOT NULL,
    n_jobs     INTEGER NOT NULL,
    created_at REAL NOT NULL
);
CREATE TABLE runs (
    id           INTEGER PRIMARY KEY,
    name         TEXT NOT NULL,
    harness      TEXT NOT NULL,
    spec_json    TEXT NOT NULL,
    spec_hash    TEXT NOT NULL,
    sweep_id     INTEGER REFERENCES sweeps(id),
    status       TEXT NOT NULL DEFAULT 'queued'
        CHECK (status IN ('queued','running','cancelling',
                          'done','failed','cancelled')),
    worker       TEXT,
    error        TEXT,
    created_at   REAL NOT NULL,
    started_at   REAL,
    finished_at  REAL,
    periods_done INTEGER NOT NULL DEFAULT 0,
    n_periods    INTEGER,
    event_log    TEXT,
    event_hash   TEXT,
    n_events     INTEGER,
    result_json  TEXT
);
CREATE INDEX runs_status ON runs(status);
CREATE INDEX runs_spec_hash ON runs(spec_hash);
CREATE INDEX runs_sweep ON runs(sweep_id);
CREATE TABLE checkpoints (
    id         INTEGER PRIMARY KEY,
    run_id     INTEGER NOT NULL REFERENCES runs(id),
    period     INTEGER NOT NULL,
    log_offset INTEGER NOT NULL DEFAULT 0,
    doc_json   TEXT NOT NULL,
    created_at REAL NOT NULL,
    UNIQUE (run_id, period)
);
CREATE TABLE audits (
    run_id      INTEGER PRIMARY KEY REFERENCES runs(id),
    passed      INTEGER NOT NULL,
    report_json TEXT NOT NULL,
    created_at  REAL NOT NULL
);
"""

#: Migration scripts, one per schema version; ``MIGRATIONS[i]`` takes a
#: database from version ``i`` to ``i + 1``.  Append — never edit — so
#: any existing store upgrades in order.
MIGRATIONS: Tuple[str, ...] = (_DDL_V1,)

SCHEMA_VERSION = len(MIGRATIONS)


def spec_hash(doc: Mapping[str, Any]) -> str:
    """SHA-256 over the canonical (sorted-keys) JSON of a spec doc."""
    return hashlib.sha256(
        json.dumps(doc, sort_keys=True, default=str).encode()
    ).hexdigest()


def _json_or_none(text: Optional[str]) -> Optional[Any]:
    return None if text is None else json.loads(text)


@dataclass(frozen=True)
class RunRow:
    """One submitted run (a row of the ``runs`` table)."""

    id: int
    name: str
    harness: str
    spec_json: str
    spec_hash: str
    sweep_id: Optional[int]
    status: str
    worker: Optional[str]
    error: Optional[str]
    created_at: float
    started_at: Optional[float]
    finished_at: Optional[float]
    periods_done: int
    n_periods: Optional[int]
    event_log: Optional[str]
    event_hash: Optional[str]
    n_events: Optional[int]
    result_json: Optional[str]

    @property
    def spec(self) -> Dict[str, Any]:
        """The scenario spec document this run executes."""
        return json.loads(self.spec_json)

    @property
    def result(self) -> Optional[Dict[str, Any]]:
        """The result summary (``None`` until the run is done)."""
        return _json_or_none(self.result_json)

    @property
    def terminal(self) -> bool:
        return self.status in TERMINAL_STATUSES

    def to_doc(self, spec: bool = False) -> Dict[str, Any]:
        """JSON document for the HTTP API (optionally with the spec)."""
        doc: Dict[str, Any] = {
            "id": self.id,
            "name": self.name,
            "harness": self.harness,
            "spec_hash": self.spec_hash,
            "sweep_id": self.sweep_id,
            "status": self.status,
            "worker": self.worker,
            "error": self.error,
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "periods_done": self.periods_done,
            "n_periods": self.n_periods,
            "event_log": self.event_log,
            "event_hash": self.event_hash,
            "n_events": self.n_events,
        }
        if spec:
            doc["spec"] = self.spec
        return doc


@dataclass(frozen=True)
class SweepRow:
    """One grid sweep (a row of the ``sweeps`` table)."""

    id: int
    name: str
    base_json: str
    grid_json: str
    n_jobs: int
    created_at: float

    @property
    def base(self) -> Dict[str, Any]:
        return json.loads(self.base_json)

    @property
    def grid(self) -> Dict[str, Any]:
        return json.loads(self.grid_json)


@dataclass(frozen=True)
class CheckpointRow:
    """One mid-run checkpoint (kernel document + event-log offset)."""

    id: int
    run_id: int
    period: int
    log_offset: int
    doc_json: str
    created_at: float

    @property
    def doc(self) -> Dict[str, Any]:
        return json.loads(self.doc_json)


@dataclass(frozen=True)
class AuditRow:
    """One stored SLO/power audit report (one per finished run)."""

    run_id: int
    passed: bool
    report_json: str
    created_at: float

    @property
    def report(self) -> Dict[str, Any]:
        return json.loads(self.report_json)


_RUN_COLUMNS = (
    "id, name, harness, spec_json, spec_hash, sweep_id, status, worker, "
    "error, created_at, started_at, finished_at, periods_done, n_periods, "
    "event_log, event_hash, n_events, result_json"
)


class ResultsStore:
    """Typed access to one service database (thread-safe).

    Each thread gets its own ``sqlite3`` connection (WAL journal,
    ``busy_timeout``, foreign keys on); migrations run once, on first
    open, guarded by an immediate transaction so concurrent first
    opens do not race.
    """

    def __init__(self, path: Union[str, Path], timeout_s: float = 30.0):
        self.path = Path(path)
        self.timeout_s = float(timeout_s)
        self._local = threading.local()
        self._conns: List[sqlite3.Connection] = []
        self._conns_lock = threading.Lock()
        self._migrate()

    # -- connections and schema ---------------------------------------

    def connect(self) -> sqlite3.Connection:
        """This thread's connection (created on first use)."""
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = sqlite3.connect(self.path, timeout=self.timeout_s)
            conn.row_factory = sqlite3.Row
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA foreign_keys=ON")
            conn.execute(f"PRAGMA busy_timeout={int(self.timeout_s * 1000)}")
            self._local.conn = conn
            with self._conns_lock:
                self._conns.append(conn)
        return conn

    def close(self) -> None:
        """Close every connection this store ever opened."""
        with self._conns_lock:
            conns, self._conns = self._conns, []
        for conn in conns:
            try:
                conn.close()
            except sqlite3.Error:
                pass
        self._local = threading.local()

    @property
    def schema_version(self) -> int:
        return int(self.connect().execute("PRAGMA user_version").fetchone()[0])

    def _migrate(self) -> None:
        conn = self.connect()
        # Statement-at-a-time (executescript would COMMIT first and
        # break per-step atomicity); the immediate transaction also
        # serializes concurrent first-opens of the same database.
        with conn:
            conn.execute("BEGIN IMMEDIATE")
            version = int(conn.execute("PRAGMA user_version").fetchone()[0])
            if version > SCHEMA_VERSION:
                raise StoreError(
                    f"{self.path} has schema version {version}, newer than "
                    f"this code supports ({SCHEMA_VERSION}); upgrade repro"
                )
            for step in range(version, SCHEMA_VERSION):
                for statement in MIGRATIONS[step].split(";"):
                    if statement.strip():
                        conn.execute(statement)
                conn.execute(f"PRAGMA user_version = {step + 1}")

    # -- runs ----------------------------------------------------------

    def submit_run(
        self,
        spec_doc: Mapping[str, Any],
        sweep_id: Optional[int] = None,
        dedupe: bool = True,
    ) -> Tuple[RunRow, bool]:
        """Queue a run for *spec_doc*; returns ``(row, cached)``.

        With ``dedupe`` (the default), an identical spec that is already
        queued, running, or done is returned instead of re-queued
        (``cached=True``).  Failed and cancelled runs never satisfy a
        re-submission — submitting again retries them with a new row.
        """
        digest = spec_hash(spec_doc)
        conn = self.connect()
        with conn:
            conn.execute("BEGIN IMMEDIATE")
            if dedupe:
                row = conn.execute(
                    f"SELECT {_RUN_COLUMNS} FROM runs WHERE spec_hash = ? "
                    "AND status IN ('queued','running','cancelling','done') "
                    "ORDER BY id DESC LIMIT 1",
                    (digest,),
                ).fetchone()
                if row is not None:
                    return RunRow(**dict(row)), True
            cur = conn.execute(
                "INSERT INTO runs (name, harness, spec_json, spec_hash, "
                "sweep_id, status, created_at) VALUES (?, ?, ?, ?, ?, "
                "'queued', ?)",
                (
                    str(spec_doc.get("name", "")),
                    str(spec_doc.get("harness", "")),
                    json.dumps(spec_doc, sort_keys=True, default=str),
                    digest,
                    sweep_id,
                    time.time(),
                ),
            )
            run_id = int(cur.lastrowid or 0)
        return self.get_run(run_id), False

    def get_run(self, run_id: int) -> RunRow:
        row = self.connect().execute(
            f"SELECT {_RUN_COLUMNS} FROM runs WHERE id = ?", (run_id,)
        ).fetchone()
        if row is None:
            raise KeyError(f"no run with id {run_id}")
        return RunRow(**dict(row))

    def list_runs(
        self,
        status: Optional[str] = None,
        sweep_id: Optional[int] = None,
        limit: int = 500,
    ) -> List[RunRow]:
        clauses, params = [], []  # type: ignore[var-annotated]
        if status is not None:
            if status not in _ALL_STATUSES:
                raise StoreError(f"unknown status {status!r}")
            clauses.append("status = ?")
            params.append(status)
        if sweep_id is not None:
            clauses.append("sweep_id = ?")
            params.append(sweep_id)
        where = ("WHERE " + " AND ".join(clauses)) if clauses else ""
        params.append(int(limit))
        rows = self.connect().execute(
            f"SELECT {_RUN_COLUMNS} FROM runs {where} ORDER BY id LIMIT ?",
            params,
        ).fetchall()
        return [RunRow(**dict(r)) for r in rows]

    def claim_run(self, worker: str) -> Optional[RunRow]:
        """Atomically claim the oldest queued run for *worker*."""
        conn = self.connect()
        with conn:
            conn.execute("BEGIN IMMEDIATE")
            row = conn.execute(
                "UPDATE runs SET status='running', worker=?, started_at=? "
                "WHERE id = (SELECT id FROM runs WHERE status='queued' "
                "ORDER BY id LIMIT 1) AND status='queued' "
                f"RETURNING {_RUN_COLUMNS}",
                (worker, time.time()),
            ).fetchone()
        return None if row is None else RunRow(**dict(row))

    def update_progress(
        self,
        run_id: int,
        periods_done: int,
        n_periods: Optional[int] = None,
        event_log: Optional[str] = None,
    ) -> None:
        sets, params = ["periods_done = ?"], [int(periods_done)]  # type: ignore[list-item]
        if n_periods is not None:
            sets.append("n_periods = ?")
            params.append(int(n_periods))
        if event_log is not None:
            sets.append("event_log = ?")
            params.append(event_log)  # type: ignore[arg-type]
        params.append(run_id)  # type: ignore[arg-type]
        with self.connect() as conn:
            conn.execute(f"UPDATE runs SET {', '.join(sets)} WHERE id = ?", params)

    def finish_run(
        self,
        run_id: int,
        status: str,
        result: Optional[Mapping[str, Any]] = None,
        event_hash: Optional[str] = None,
        n_events: Optional[int] = None,
        error: Optional[str] = None,
    ) -> None:
        """Move a run to a terminal status with its result summary."""
        if status not in TERMINAL_STATUSES:
            raise StoreError(f"{status!r} is not a terminal status")
        with self.connect() as conn:
            conn.execute(
                "UPDATE runs SET status=?, finished_at=?, result_json=?, "
                "event_hash=?, n_events=?, error=? WHERE id=?",
                (
                    status,
                    time.time(),
                    None if result is None
                    else json.dumps(result, sort_keys=True, default=str),
                    event_hash,
                    n_events,
                    error,
                    run_id,
                ),
            )

    def requeue_run(self, run_id: int) -> None:
        """Put an in-flight run back in the queue (graceful shutdown)."""
        with self.connect() as conn:
            conn.execute(
                "UPDATE runs SET status='queued', worker=NULL WHERE id=? "
                "AND status IN ('running','cancelling')",
                (run_id,),
            )

    def recover_stale_running(self) -> int:
        """Requeue every 'running' run left behind by a dead process.

        Called on runner startup: any run still marked running cannot
        actually be running (this process owns every worker), so it is
        the residue of a crash or SIGKILL.  Its latest checkpoint — if
        any — resumes it; otherwise it restarts from period 0.
        """
        with self.connect() as conn:
            cur = conn.execute(
                "UPDATE runs SET status='queued', worker=NULL "
                "WHERE status IN ('running','cancelling')"
            )
        return int(cur.rowcount)

    def request_cancel(self, run_id: int) -> RunRow:
        """Cancel a queued run now, or flag a running one to stop."""
        conn = self.connect()
        with conn:
            conn.execute("BEGIN IMMEDIATE")
            run = conn.execute(
                f"SELECT {_RUN_COLUMNS} FROM runs WHERE id=?", (run_id,)
            ).fetchone()
            if run is None:
                raise KeyError(f"no run with id {run_id}")
            status = run["status"]
            if status == "queued":
                conn.execute(
                    "UPDATE runs SET status='cancelled', finished_at=? "
                    "WHERE id=?", (time.time(), run_id),
                )
            elif status == "running":
                conn.execute(
                    "UPDATE runs SET status='cancelling' WHERE id=?", (run_id,)
                )
        return self.get_run(run_id)

    def run_status(self, run_id: int) -> str:
        row = self.connect().execute(
            "SELECT status FROM runs WHERE id=?", (run_id,)
        ).fetchone()
        if row is None:
            raise KeyError(f"no run with id {run_id}")
        return str(row[0])

    def counts_by_status(self) -> Dict[str, int]:
        """Run counts keyed by status (every status key present)."""
        counts = {status: 0 for status in _ALL_STATUSES}
        for status, n in self.connect().execute(
            "SELECT status, COUNT(*) FROM runs GROUP BY status"
        ):
            counts[str(status)] = int(n)
        return counts

    # -- checkpoints ---------------------------------------------------

    def save_checkpoint(
        self,
        run_id: int,
        period: int,
        doc: Mapping[str, Any],
        log_offset: int,
    ) -> None:
        """Store (or overwrite) the checkpoint at *period* for a run."""
        with self.connect() as conn:
            conn.execute(
                "INSERT INTO checkpoints (run_id, period, log_offset, "
                "doc_json, created_at) VALUES (?, ?, ?, ?, ?) "
                "ON CONFLICT (run_id, period) DO UPDATE SET "
                "log_offset=excluded.log_offset, doc_json=excluded.doc_json, "
                "created_at=excluded.created_at",
                (
                    run_id,
                    int(period),
                    int(log_offset),
                    json.dumps(doc, sort_keys=True, default=str),
                    time.time(),
                ),
            )

    def latest_checkpoint(self, run_id: int) -> Optional[CheckpointRow]:
        row = self.connect().execute(
            "SELECT id, run_id, period, log_offset, doc_json, created_at "
            "FROM checkpoints WHERE run_id=? ORDER BY period DESC LIMIT 1",
            (run_id,),
        ).fetchone()
        return None if row is None else CheckpointRow(**dict(row))

    def list_checkpoints(self, run_id: int) -> List[CheckpointRow]:
        rows = self.connect().execute(
            "SELECT id, run_id, period, log_offset, doc_json, created_at "
            "FROM checkpoints WHERE run_id=? ORDER BY period",
            (run_id,),
        ).fetchall()
        return [CheckpointRow(**dict(r)) for r in rows]

    # -- audits --------------------------------------------------------

    def save_audit(
        self, run_id: int, report: Mapping[str, Any], passed: bool
    ) -> None:
        with self.connect() as conn:
            conn.execute(
                "INSERT INTO audits (run_id, passed, report_json, created_at) "
                "VALUES (?, ?, ?, ?) ON CONFLICT (run_id) DO UPDATE SET "
                "passed=excluded.passed, report_json=excluded.report_json, "
                "created_at=excluded.created_at",
                (
                    run_id,
                    1 if passed else 0,
                    json.dumps(report, sort_keys=True, default=str),
                    time.time(),
                ),
            )

    def get_audit(self, run_id: int) -> Optional[AuditRow]:
        row = self.connect().execute(
            "SELECT run_id, passed, report_json, created_at FROM audits "
            "WHERE run_id=?", (run_id,),
        ).fetchone()
        if row is None:
            return None
        data = dict(row)
        data["passed"] = bool(data["passed"])
        return AuditRow(**data)

    # -- sweeps --------------------------------------------------------

    def create_sweep(
        self,
        name: str,
        base_doc: Mapping[str, Any],
        grid: Mapping[str, Any],
        n_jobs: int,
    ) -> SweepRow:
        conn = self.connect()
        with conn:
            cur = conn.execute(
                "INSERT INTO sweeps (name, base_json, grid_json, n_jobs, "
                "created_at) VALUES (?, ?, ?, ?, ?)",
                (
                    name,
                    json.dumps(base_doc, sort_keys=True, default=str),
                    json.dumps(grid, sort_keys=True, default=str),
                    int(n_jobs),
                    time.time(),
                ),
            )
        return self.get_sweep(int(cur.lastrowid or 0))

    def get_sweep(self, sweep_id: int) -> SweepRow:
        row = self.connect().execute(
            "SELECT id, name, base_json, grid_json, n_jobs, created_at "
            "FROM sweeps WHERE id=?", (sweep_id,),
        ).fetchone()
        if row is None:
            raise KeyError(f"no sweep with id {sweep_id}")
        return SweepRow(**dict(row))

    def list_sweeps(self) -> List[SweepRow]:
        rows = self.connect().execute(
            "SELECT id, name, base_json, grid_json, n_jobs, created_at "
            "FROM sweeps ORDER BY id"
        ).fetchall()
        return [SweepRow(**dict(r)) for r in rows]

    def sweep_progress(self, sweep_id: int) -> Dict[str, int]:
        """Status -> run count for one sweep (all status keys present)."""
        self.get_sweep(sweep_id)  # raise KeyError for unknown ids
        counts = {status: 0 for status in _ALL_STATUSES}
        for status, n in self.connect().execute(
            "SELECT status, COUNT(*) FROM runs WHERE sweep_id=? GROUP BY status",
            (sweep_id,),
        ):
            counts[str(status)] = int(n)
        return counts
