"""The thin HTTP API over the store and the experiment runner.

Stdlib only (:class:`http.server.ThreadingHTTPServer`) — no new
dependencies.  Routes (all JSON unless noted):

====== =============================== =====================================
Method Path                            Meaning
====== =============================== =====================================
GET    ``/api/health``                 liveness + worker/queue snapshot
GET    ``/api/scenarios``              registered scenario names + summaries
GET    ``/api/scenarios/<name>``       one fully-resolved spec document
POST   ``/api/runs``                   submit ``{"scenario": name}`` or
                                       ``{"spec": {...}}`` (+ optional
                                       ``overrides``, ``force``)
GET    ``/api/runs``                   list runs (``?status=``, ``?sweep=``)
GET    ``/api/runs/<id>``              status document (``?spec=1`` embeds
                                       the spec)
GET    ``/api/runs/<id>/result``       result summary + event-log hash
GET    ``/api/runs/<id>/audit``        stored SLO/power audit report
GET    ``/api/runs/<id>/events``       the raw JSONL event log;
                                       ``?follow=1`` streams until the run
                                       finishes (tail -f semantics)
GET    ``/api/runs/<id>/checkpoints``  stored checkpoint metadata
POST   ``/api/runs/<id>/cancel``       cancel queued / stop running
POST   ``/api/sweeps``                 submit ``{"scenario"|"spec", "grid"}``
GET    ``/api/sweeps``                 list sweeps
GET    ``/api/sweeps/<id>``            sweep document + per-status counts
GET    ``/metrics``                    Prometheus text exposition (plain)
====== =============================== =====================================

The follow endpoint reuses :class:`repro.obs.watch.JsonlFollower`, so a
client sees exactly the complete-line semantics the live dashboard
does.  ``/metrics`` renders with :func:`repro.obs.metrics.prom_line`.
"""

from __future__ import annotations

import json
import logging
import re
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.engine.scenario import ScenarioError, ScenarioSpec, builtin_registry
from repro.obs.metrics import prom_line
from repro.obs.watch import JsonlFollower
from repro.service.runner import ExperimentRunner, RunnerConfig
from repro.service.store import ResultsStore, StoreError
from repro.service.sweep import SweepError, apply_overrides, expand_grid

__all__ = ["ApiError", "ControlPlaneService", "ServiceConfig"]

logger = logging.getLogger(__name__)


class ApiError(Exception):
    """An HTTP-visible request error (status + message)."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


class ServiceConfig:
    """Service wiring: database path, data dir, bind address, runner knobs."""

    def __init__(
        self,
        db_path: str = "repro-service.db",
        data_dir: str = "repro-service-data",
        host: str = "127.0.0.1",
        port: int = 8642,
        workers: int = 2,
        checkpoint_every: int = 5,
        audit_violation_budget: float = 1.0,
        poll_interval_s: float = 0.2,
    ):
        self.db_path = db_path
        self.data_dir = data_dir
        self.host = host
        self.port = int(port)
        self.runner = RunnerConfig(
            data_dir=data_dir,
            workers=workers,
            checkpoint_every=checkpoint_every,
            audit_violation_budget=audit_violation_budget,
            poll_interval_s=poll_interval_s,
        )


class ControlPlaneService:
    """Store + runner + HTTP server, with one graceful shutdown path."""

    def __init__(self, config: Optional[ServiceConfig] = None):
        self.config = config or ServiceConfig()
        self.store = ResultsStore(self.config.db_path)
        self.runner = ExperimentRunner(self.store, self.config.runner)
        self.registry = builtin_registry()
        self.started_at = time.time()
        handler = _make_handler(self)
        self.httpd = ThreadingHTTPServer(
            (self.config.host, self.config.port), handler
        )
        self.httpd.daemon_threads = True
        self._serve_thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        """The actually bound (host, port) — port 0 resolves here."""
        host, port = self.httpd.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        """Launch the runner workers and serve HTTP in the background."""
        self.runner.start()
        self._serve_thread = threading.Thread(
            target=self.httpd.serve_forever, name="repro-serve-http", daemon=True
        )
        self._serve_thread.start()
        logger.info("control-plane service listening on %s", self.url)

    def serve_forever(self) -> None:
        """Launch the runner and serve HTTP on the calling thread."""
        self.runner.start()
        logger.info("control-plane service listening on %s", self.url)
        self.httpd.serve_forever()

    def shutdown(self, graceful: bool = True) -> None:
        """Stop HTTP, stop the workers (checkpoint + requeue in-flight
        runs when *graceful*), and close the store."""
        self.httpd.shutdown()
        self.httpd.server_close()
        self.runner.stop(graceful=graceful)
        self.store.close()

    # -- operations the handler calls ----------------------------------

    def resolve_spec(self, body: Mapping[str, Any]) -> Dict[str, Any]:
        """Spec document from ``{"scenario": name}`` or ``{"spec": {...}}``,
        with optional dotted-path ``overrides`` applied and validated."""
        if not isinstance(body, Mapping):
            raise ApiError(400, "request body must be a JSON object")
        doc: Optional[Dict[str, Any]]
        if "spec" in body:
            if not isinstance(body["spec"], Mapping):
                raise ApiError(400, "spec must be an object")
            doc = dict(body["spec"])
        elif "scenario" in body:
            name = str(body["scenario"])
            if name not in self.registry:
                raise ApiError(
                    404,
                    f"unknown scenario {name!r}; known: "
                    + ", ".join(self.registry.names()),
                )
            doc = self.registry.get(name).to_dict()
        else:
            raise ApiError(400, "body needs a 'scenario' name or a 'spec' object")
        overrides = body.get("overrides")
        if overrides:
            if not isinstance(overrides, Mapping):
                raise ApiError(400, "overrides must be an object of path -> value")
            try:
                doc = apply_overrides(doc, overrides)
            except SweepError as exc:
                raise ApiError(400, str(exc))
        try:
            spec = ScenarioSpec.from_dict(doc)
        except ScenarioError as exc:
            raise ApiError(400, str(exc))
        problems = spec.validate()
        if problems:
            raise ApiError(400, "invalid spec: " + "; ".join(problems))
        return spec.to_dict()

    def submit(self, body: Mapping[str, Any]) -> Dict[str, Any]:
        doc = self.resolve_spec(body)
        run, cached = self.store.submit_run(
            doc, dedupe=not bool(body.get("force"))
        )
        return {"run": run.to_doc(), "cached": cached}

    def submit_sweep(self, body: Mapping[str, Any]) -> Dict[str, Any]:
        base = self.resolve_spec(body)
        grid = body.get("grid")
        if not isinstance(grid, Mapping):
            raise ApiError(400, "body needs a 'grid' object of path -> values")
        try:
            jobs = expand_grid(base, grid)
        except SweepError as exc:
            raise ApiError(400, str(exc))
        name = str(body.get("name") or f"{base['name']}-sweep")
        sweep = self.store.create_sweep(name, base, dict(grid), len(jobs))
        run_ids = []
        for doc, _overrides in jobs:
            # No dedupe inside a sweep: every configuration gets its own
            # row so sweep progress/results stay self-contained.
            run, _ = self.store.submit_run(doc, sweep_id=sweep.id, dedupe=False)
            run_ids.append(run.id)
        return {
            "sweep": {"id": sweep.id, "name": sweep.name, "n_jobs": sweep.n_jobs},
            "run_ids": run_ids,
        }

    def metrics_text(self) -> str:
        """Prometheus text exposition of the service state."""
        counts = self.store.counts_by_status()
        lines = ["# TYPE repro_service_runs_total gauge"]
        for status in sorted(counts):
            lines.append(prom_line(
                "repro_service_runs_total", {"status": status},
                float(counts[status]),
            ))
        lines += [
            "# TYPE repro_service_workers gauge",
            prom_line("repro_service_workers", {},
                      float(self.config.runner.workers)),
            "# TYPE repro_service_busy_workers gauge",
            prom_line("repro_service_busy_workers", {},
                      float(self.runner.busy_workers)),
            "# TYPE repro_service_sweeps_total gauge",
            prom_line("repro_service_sweeps_total", {},
                      float(len(self.store.list_sweeps()))),
            "# TYPE repro_service_runs_completed_total counter",
            prom_line("repro_service_runs_completed_total", {},
                      float(self.runner.n_completed)),
            "# TYPE repro_service_runs_resumed_total counter",
            prom_line("repro_service_runs_resumed_total", {},
                      float(self.runner.n_resumed)),
            "# TYPE repro_service_uptime_seconds gauge",
            prom_line("repro_service_uptime_seconds", {},
                      time.time() - self.started_at),
        ]
        return "\n".join(lines) + "\n"


_RUN_PATH = re.compile(
    r"^/api/runs/(?P<id>\d+)"
    r"(?:/(?P<sub>result|audit|events|checkpoints|cancel))?$"
)
_SWEEP_PATH = re.compile(r"^/api/sweeps/(?P<id>\d+)$")
_SCENARIO_PATH = re.compile(r"^/api/scenarios/(?P<name>[^/]+)$")


def _make_handler(service: ControlPlaneService):
    """A request-handler class closed over the service instance."""

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        server_version = "repro-serve"

        # -- plumbing --------------------------------------------------

        def log_message(self, fmt: str, *args: Any) -> None:
            logger.debug("%s %s", self.address_string(), fmt % args)

        def _send_json(self, doc: Any, status: int = 200) -> None:
            payload = json.dumps(doc, indent=2, default=str).encode() + b"\n"
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            self.wfile.write(payload)

        def _send_text(self, text: str, content_type: str = "text/plain") -> None:
            payload = text.encode()
            self.send_response(200)
            self.send_header("Content-Type", f"{content_type}; charset=utf-8")
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            self.wfile.write(payload)

        def _read_body(self) -> Dict[str, Any]:
            length = int(self.headers.get("Content-Length") or 0)
            raw = self.rfile.read(length) if length else b"{}"
            try:
                body = json.loads(raw or b"{}")
            except json.JSONDecodeError as exc:
                raise ApiError(400, f"request body is not JSON: {exc}")
            if not isinstance(body, dict):
                raise ApiError(400, "request body must be a JSON object")
            return body

        def _dispatch(self, method: str) -> None:
            try:
                parsed = urlparse(self.path)
                query = {k: v[-1] for k, v in parse_qs(parsed.query).items()}
                self._route(method, parsed.path, query)
            except ApiError as exc:
                self._send_json({"error": str(exc)}, status=exc.status)
            except KeyError as exc:
                self._send_json({"error": str(exc.args[0])}, status=404)
            except (StoreError, ScenarioError) as exc:
                self._send_json({"error": str(exc)}, status=400)
            except BrokenPipeError:
                pass  # client went away mid-stream
            except Exception as exc:  # pragma: no cover - defensive
                logger.exception("unhandled API error")
                self._send_json({"error": f"internal error: {exc}"}, status=500)

        def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
            self._dispatch("GET")

        def do_POST(self) -> None:  # noqa: N802
            self._dispatch("POST")

        # -- routes ----------------------------------------------------

        def _route(self, method: str, path: str, query: Dict[str, str]) -> None:
            if method == "GET" and path == "/api/health":
                counts = service.store.counts_by_status()
                self._send_json({
                    "status": "ok",
                    "workers": service.config.runner.workers,
                    "busy_workers": service.runner.busy_workers,
                    "runs": counts,
                    "uptime_s": time.time() - service.started_at,
                })
                return
            if method == "GET" and path == "/metrics":
                self._send_text(service.metrics_text())
                return
            if method == "GET" and path == "/api/scenarios":
                self._send_json([
                    {"name": s.name, "harness": s.harness,
                     "description": s.description}
                    for s in service.registry
                ])
                return
            match = _SCENARIO_PATH.match(path)
            if match and method == "GET":
                name = match.group("name")
                if name not in service.registry:
                    raise ApiError(404, f"unknown scenario {name!r}")
                self._send_json(service.registry.get(name).to_dict())
                return
            if path == "/api/runs" and method == "POST":
                self._send_json(service.submit(self._read_body()), status=201)
                return
            if path == "/api/runs" and method == "GET":
                sweep_id = query.get("sweep")
                runs = service.store.list_runs(
                    status=query.get("status"),
                    sweep_id=int(sweep_id) if sweep_id else None,
                )
                self._send_json([r.to_doc() for r in runs])
                return
            match = _RUN_PATH.match(path)
            if match:
                self._route_run(
                    method, int(match.group("id")), match.group("sub"), query
                )
                return
            if path == "/api/sweeps" and method == "POST":
                self._send_json(service.submit_sweep(self._read_body()), status=201)
                return
            if path == "/api/sweeps" and method == "GET":
                self._send_json([
                    {"id": s.id, "name": s.name, "n_jobs": s.n_jobs,
                     "created_at": s.created_at}
                    for s in service.store.list_sweeps()
                ])
                return
            match = _SWEEP_PATH.match(path)
            if match and method == "GET":
                sweep_id = int(match.group("id"))
                sweep = service.store.get_sweep(sweep_id)
                self._send_json({
                    "id": sweep.id, "name": sweep.name, "n_jobs": sweep.n_jobs,
                    "base": sweep.base, "grid": sweep.grid,
                    "created_at": sweep.created_at,
                    "runs": service.store.sweep_progress(sweep_id),
                })
                return
            raise ApiError(404, f"no route for {method} {path}")

        def _route_run(
            self, method: str, run_id: int, sub: Optional[str],
            query: Dict[str, str],
        ) -> None:
            store = service.store
            if sub == "cancel":
                if method != "POST":
                    raise ApiError(405, "cancel is POST-only")
                self._send_json({"run": store.request_cancel(run_id).to_doc()})
                return
            if method != "GET":
                raise ApiError(405, f"{sub or 'run'} is GET-only")
            run = store.get_run(run_id)
            if sub is None:
                self._send_json(run.to_doc(spec=bool(query.get("spec"))))
                return
            if sub == "result":
                if run.status != "done":
                    raise ApiError(
                        409, f"run {run_id} is {run.status}, not done"
                    )
                self._send_json({
                    "run": run.to_doc(),
                    "result": run.result,
                    "event_hash": run.event_hash,
                    "n_events": run.n_events,
                })
                return
            if sub == "audit":
                audit = store.get_audit(run_id)
                if audit is None:
                    raise ApiError(404, f"run {run_id} has no audit report")
                self._send_json({
                    "run_id": run_id, "passed": audit.passed,
                    "report": audit.report,
                })
                return
            if sub == "checkpoints":
                self._send_json([
                    {"period": c.period, "log_offset": c.log_offset,
                     "created_at": c.created_at}
                    for c in store.list_checkpoints(run_id)
                ])
                return
            # sub == "events"
            self._send_events(run_id, follow=bool(query.get("follow")),
                              timeout_s=float(query.get("timeout", "60")))

        def _send_events(
            self, run_id: int, follow: bool, timeout_s: float
        ) -> None:
            run = service.store.get_run(run_id)
            if not run.event_log:
                raise ApiError(409, f"run {run_id} has no event log yet")
            path = Path(run.event_log)
            if not follow:
                if not path.exists():
                    raise ApiError(404, f"event log {path} not found")
                self._send_text(
                    path.read_text(encoding="utf-8"), "application/x-ndjson"
                )
                return
            # tail -f: stream complete lines until the run is terminal
            # and fully drained (or the timeout elapses).  No length is
            # known up front, so the connection closes to mark the end.
            self.close_connection = True
            self.send_response(200)
            self.send_header("Content-Type", "application/x-ndjson; charset=utf-8")
            self.send_header("Connection", "close")
            self.end_headers()
            follower = JsonlFollower(path)
            deadline = time.monotonic() + min(timeout_s, 600.0)
            while time.monotonic() < deadline:
                records = follower.poll()
                for record in records:
                    self.wfile.write(
                        json.dumps(record, default=str).encode() + b"\n"
                    )
                if records:
                    self.wfile.flush()
                elif service.store.get_run(run_id).terminal:
                    return
                else:
                    time.sleep(0.2)

    return Handler
