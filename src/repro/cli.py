"""Command-line entry points (installed as ``repro-testbed``,
``repro-largescale``, and ``repro-trace``).

Each command runs one of the paper's experiments with configurable
parameters and prints a plain-text report; they are thin wrappers over
the same harnesses the benchmark suite uses.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from repro.apps.workload import StepWorkload
from repro.sim.largescale import LargeScaleConfig, run_largescale
from repro.sim.testbed import TestbedConfig, TestbedExperiment
from repro.traces.generator import TraceConfig, generate_trace
from repro.util.tables import format_table


def main_testbed(argv: Optional[List[str]] = None) -> int:
    """Run the simulated 4-server / 8-application testbed."""
    parser = argparse.ArgumentParser(
        prog="repro-testbed",
        description="Simulated testbed with MPC response-time control (paper Figs. 2-3).",
    )
    parser.add_argument("--duration", type=float, default=600.0, help="run length in seconds")
    parser.add_argument("--setpoint", type=float, default=1000.0, help="response-time set point (ms)")
    parser.add_argument("--concurrency", type=int, default=40, help="clients per application")
    parser.add_argument("--apps", type=int, default=8, help="number of applications")
    parser.add_argument("--seed", type=int, default=2010)
    parser.add_argument(
        "--step-workload",
        action="store_true",
        help="apply the paper's Fig. 3 concurrency step (40->80 on app 5, t in [600,1200))",
    )
    args = parser.parse_args(argv)

    workloads = {}
    if args.step_workload:
        workloads[min(5, args.apps - 1)] = StepWorkload(
            args.concurrency, 2 * args.concurrency, 600.0, 1200.0
        )
    config = TestbedConfig(
        n_apps=args.apps,
        duration_s=args.duration,
        setpoint_ms=args.setpoint,
        concurrency=args.concurrency,
        workloads=workloads,
        seed=args.seed,
    )
    result = TestbedExperiment(config).run()
    from repro.sim.report import testbed_report

    print(testbed_report(result, n_apps=args.apps, setpoint_ms=args.setpoint))
    return 0


def main_largescale(argv: Optional[List[str]] = None) -> int:
    """Run the trace-driven large-scale comparison (paper Fig. 6)."""
    parser = argparse.ArgumentParser(
        prog="repro-largescale",
        description="Trace-driven data-center simulation: IPAC vs pMapper energy per VM.",
    )
    parser.add_argument("--vms", type=int, nargs="+", default=[30, 500, 2000, 5415])
    parser.add_argument("--servers", type=int, default=3000)
    parser.add_argument("--days", type=int, default=7)
    parser.add_argument("--schemes", nargs="+", default=["ipac", "pmapper"],
                        choices=["ipac", "pmapper", "pac", "static_peak"])
    parser.add_argument("--provisioning", default="current",
                        choices=["current", "ewma_peak", "holt"])
    parser.add_argument("--relief", action="store_true",
                        help="enable on-demand overload relief between invocations")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)

    trace = generate_trace(
        TraceConfig(n_servers=max(args.vms), n_days=args.days), rng=args.seed
    )
    rows = []
    for n in args.vms:
        row = [n]
        for scheme in args.schemes:
            res = run_largescale(
                trace,
                LargeScaleConfig(
                    n_vms=n, n_servers=args.servers, scheme=scheme,
                    provisioning=args.provisioning, ondemand_relief=args.relief,
                    seed=args.seed,
                ),
            )
            row.extend([res.energy_per_vm_wh, res.migrations])
        rows.append(row)
    headers = ["#VMs"]
    for scheme in args.schemes:
        headers.extend([f"{scheme} Wh/VM", f"{scheme} moves"])
    print(format_table(headers, rows, title=f"Energy per VM over {args.days} days"))
    return 0


def main_trace(argv: Optional[List[str]] = None) -> int:
    """Generate a synthetic utilization trace and write it to CSV."""
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Generate a synthetic 15-minute data-center utilization trace.",
    )
    parser.add_argument("output", help="output CSV path")
    parser.add_argument("--servers", type=int, default=5415)
    parser.add_argument("--days", type=int, default=7)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)
    trace = generate_trace(
        TraceConfig(n_servers=args.servers, n_days=args.days), rng=args.seed
    )
    trace.to_csv(args.output)
    u = trace.utilization
    print(
        f"Wrote {args.output}: {trace.n_series} series x {trace.n_samples} samples, "
        f"util mean {u.mean():.3f} / p95 {np.percentile(u, 95):.3f}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main_testbed())
