"""Command-line entry points (installed as ``repro-testbed``,
``repro-largescale``, ``repro-trace``, ``repro-obs``, ``repro-faults``,
``repro-bench``, ``repro-scenario``, and ``repro-sim``).

Each command runs one of the paper's experiments with configurable
parameters and prints a plain-text report; they are thin wrappers over
the same harnesses the benchmark suite uses.  All commands take
``--verbose``/``--quiet``; the run commands additionally take
``--trace-jsonl PATH`` to record a structured telemetry log that
``repro-obs`` can summarize, profile, audit, or watch live (see
``docs/OBSERVABILITY.md``), and ``--faults PATH`` to inject a
deterministic fault scenario (validate/generate one with
``repro-faults``).

``repro-scenario`` lists and validates named scenario specs (the
:class:`repro.engine.scenario.ScenarioRegistry`); ``repro-sim`` runs one
through the control-plane kernel, with ``--checkpoint``/``--resume`` for
mid-run snapshots.
"""

from __future__ import annotations

import argparse
import contextlib
import sys
from typing import List, Optional

import numpy as np

from repro.apps.workload import StepWorkload
from repro.obs import (
    JsonlBackend,
    Telemetry,
    render_summary,
    summarize_jsonl,
    use_telemetry,
)
from repro.sim.largescale import LargeScaleConfig, run_largescale
from repro.sim.testbed import TestbedConfig, TestbedExperiment
from repro.traces.generator import TraceConfig, generate_trace
from repro.util.logsetup import add_verbosity_flags, configure_logging
from repro.util.tables import format_table


def _telemetry_scope(jsonl_path: Optional[str]):
    """JSONL telemetry scope when a path was given, else a no-op scope.

    Also arms the SIGTERM handler so a terminated run unwinds through
    the ``with`` block and the event log is flushed and closed rather
    than truncated mid-line.
    """
    if jsonl_path is None:
        return contextlib.nullcontext()
    from repro.obs import install_sigterm_flush

    install_sigterm_flush()
    return use_telemetry(Telemetry(JsonlBackend(jsonl_path)))


def _load_fault_schedule(path: Optional[str]):
    """Load ``--faults PATH`` into a FaultSchedule, or exit with errors."""
    if path is None:
        return None
    from repro.faults import FaultSchedule, FaultSpecError

    try:
        return FaultSchedule.from_json(path)
    except OSError as exc:
        print(f"cannot read fault spec {path}: {exc.strerror or exc}", file=sys.stderr)
        raise SystemExit(1)
    except (FaultSpecError, ValueError) as exc:
        print(f"invalid fault spec {path}:\n{exc}", file=sys.stderr)
        raise SystemExit(1)


def main_testbed(argv: Optional[List[str]] = None) -> int:
    """Run the simulated 4-server / 8-application testbed."""
    parser = argparse.ArgumentParser(
        prog="repro-testbed",
        description="Simulated testbed with MPC response-time control (paper Figs. 2-3).",
    )
    parser.add_argument("--duration", type=float, default=600.0, help="run length in seconds")
    parser.add_argument("--setpoint", type=float, default=1000.0, help="response-time set point (ms)")
    parser.add_argument("--concurrency", type=int, default=40, help="clients per application")
    parser.add_argument("--apps", type=int, default=8, help="number of applications")
    parser.add_argument("--seed", type=int, default=2010)
    parser.add_argument(
        "--step-workload",
        action="store_true",
        help="apply the paper's Fig. 3 concurrency step (40->80 on app 5, t in [600,1200))",
    )
    parser.add_argument(
        "--trace-jsonl", metavar="PATH", default=None,
        help="record telemetry (spans, events, metrics) to a JSONL file",
    )
    parser.add_argument(
        "--trace-requests", type=int, default=0, metavar="N",
        help="trace every Nth client request through its tiers and "
        "attribute per-tier energy (0 = off; see repro-obs summarize/audit)",
    )
    parser.add_argument(
        "--faults", metavar="PATH", default=None,
        help="inject the fault scenario described by this JSON spec "
        "(see repro-faults)",
    )
    parser.add_argument(
        "--control-mode", choices=("fleet", "scalar"), default="fleet",
        help="application-level control path: 'fleet' (default) batches "
        "all apps' sysid/MPC through the grouped kernels; 'scalar' runs "
        "the per-app reference loop (bit-reproducible goldens)",
    )
    add_verbosity_flags(parser)
    args = parser.parse_args(argv)
    configure_logging(args.verbose, args.quiet)

    workloads = {}
    if args.step_workload:
        workloads[min(5, args.apps - 1)] = StepWorkload(
            args.concurrency, 2 * args.concurrency, 600.0, 1200.0
        )
    config = TestbedConfig(
        n_apps=args.apps,
        duration_s=args.duration,
        setpoint_ms=args.setpoint,
        concurrency=args.concurrency,
        workloads=workloads,
        faults=_load_fault_schedule(args.faults),
        trace_requests_every=max(0, args.trace_requests),
        attribute_power=args.trace_requests > 0,
        control_mode=args.control_mode,
        seed=args.seed,
    )
    with _telemetry_scope(args.trace_jsonl):
        result = TestbedExperiment(config).run()
    from repro.sim.report import testbed_report

    print(testbed_report(result, n_apps=args.apps, setpoint_ms=args.setpoint))
    if args.trace_jsonl:
        print(f"telemetry written to {args.trace_jsonl}")
    return 0


def main_largescale(argv: Optional[List[str]] = None) -> int:
    """Run the trace-driven large-scale comparison (paper Fig. 6)."""
    parser = argparse.ArgumentParser(
        prog="repro-largescale",
        description="Trace-driven data-center simulation: IPAC vs pMapper energy per VM.",
    )
    parser.add_argument("--vms", type=int, nargs="+", default=[30, 500, 2000, 5415])
    parser.add_argument("--servers", type=int, default=3000)
    parser.add_argument("--days", type=int, default=7)
    parser.add_argument("--schemes", nargs="+", default=["ipac", "pmapper"],
                        choices=["ipac", "pmapper", "pac", "static_peak"])
    parser.add_argument("--provisioning", default="current",
                        choices=["current", "ewma_peak", "holt"])
    parser.add_argument("--relief", action="store_true",
                        help="enable on-demand overload relief between invocations")
    parser.add_argument("--attribution", action="store_true",
                        help="accumulate per-VM energy attribution "
                        "(reported per run; see repro-obs summarize)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--trace-jsonl", metavar="PATH", default=None,
        help="record telemetry (spans, events, metrics) to a JSONL file",
    )
    parser.add_argument(
        "--faults", metavar="PATH", default=None,
        help="inject the fault scenario described by this JSON spec "
        "(see repro-faults)",
    )
    add_verbosity_flags(parser)
    args = parser.parse_args(argv)
    configure_logging(args.verbose, args.quiet)

    fault_schedule = _load_fault_schedule(args.faults)
    trace = generate_trace(
        TraceConfig(n_servers=max(args.vms), n_days=args.days), rng=args.seed
    )
    rows = []
    with _telemetry_scope(args.trace_jsonl):
        for n in args.vms:
            row = [n]
            for scheme in args.schemes:
                res = run_largescale(
                    trace,
                    LargeScaleConfig(
                        n_vms=n, n_servers=args.servers, scheme=scheme,
                        provisioning=args.provisioning, ondemand_relief=args.relief,
                        faults=fault_schedule,
                        attribute_power=args.attribution,
                        seed=args.seed,
                    ),
                )
                row.extend([res.energy_per_vm_wh, res.migrations])
            rows.append(row)
    headers = ["#VMs"]
    for scheme in args.schemes:
        headers.extend([f"{scheme} Wh/VM", f"{scheme} moves"])
    print(format_table(headers, rows, title=f"Energy per VM over {args.days} days"))
    if args.trace_jsonl:
        print(f"telemetry written to {args.trace_jsonl}")
    return 0


def main_trace(argv: Optional[List[str]] = None) -> int:
    """Generate a synthetic utilization trace and write it to CSV."""
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Generate a synthetic 15-minute data-center utilization trace.",
    )
    parser.add_argument("output", help="output CSV path")
    parser.add_argument("--servers", type=int, default=5415)
    parser.add_argument("--days", type=int, default=7)
    parser.add_argument("--seed", type=int, default=7)
    add_verbosity_flags(parser)
    args = parser.parse_args(argv)
    configure_logging(args.verbose, args.quiet)
    trace = generate_trace(
        TraceConfig(n_servers=args.servers, n_days=args.days), rng=args.seed
    )
    trace.to_csv(args.output)
    u = trace.utilization
    print(
        f"Wrote {args.output}: {trace.n_series} series x {trace.n_samples} samples, "
        f"util mean {u.mean():.3f} / p95 {np.percentile(u, 95):.3f}"
    )
    return 0


def main_obs(argv: Optional[List[str]] = None) -> int:
    """Inspect telemetry JSONL files recorded by instrumented runs."""
    parser = argparse.ArgumentParser(
        prog="repro-obs",
        description="Inspect telemetry recorded with --trace-jsonl (or the obs API): "
        "summarize a finished run, profile kernel phases, audit SLO/power, "
        "or watch a run live.",
    )
    add_verbosity_flags(parser)
    sub = parser.add_subparsers(dest="command", required=True)

    p_sum = sub.add_parser(
        "summarize",
        help="reduce a telemetry JSONL file to tracking error, time-in-span, "
        "and optimizer activity tables",
    )
    p_sum.add_argument("path", help="telemetry JSONL file")
    p_sum.add_argument(
        "--json", action="store_true",
        help="print the summary as JSON instead of tables",
    )

    p_prof = sub.add_parser(
        "profile",
        help="aggregate the kernel's phase.* spans into a per-phase "
        "wall/CPU/allocation profile",
    )
    p_prof.add_argument("path", help="telemetry JSONL file")
    p_prof.add_argument(
        "--json", action="store_true",
        help="print the profile as JSON instead of a table",
    )

    p_aud = sub.add_parser(
        "audit",
        help="evaluate SLO-violation episodes and power savings vs a "
        "baseline; exit 1 when the SLO check fails",
    )
    p_aud.add_argument("path", help="telemetry JSONL file")
    p_aud.add_argument(
        "--json", action="store_true",
        help="print the audit report as JSON instead of tables",
    )
    p_aud.add_argument(
        "--output", metavar="PATH", default=None,
        help="also write the machine-readable report (JSON) here",
    )
    p_aud.add_argument(
        "--baseline-w", type=float, default=None,
        help="fixed baseline power in W (default: derive per --baseline-rule)",
    )
    p_aud.add_argument(
        "--baseline-rule", choices=["peak", "first"], default="peak",
        help="how to derive the baseline from the trace when --baseline-w "
        "is not given (default: peak observed power)",
    )
    p_aud.add_argument(
        "--violation-budget", type=float, default=0.1,
        help="max tolerated fraction of violating periods per app "
        "(default 0.1)",
    )

    p_watch = sub.add_parser(
        "watch",
        help="follow a (possibly still-growing) telemetry file and render "
        "a live ASCII dashboard",
    )
    p_watch.add_argument("path", help="telemetry JSONL file (may not exist yet)")
    p_watch.add_argument(
        "--interval", type=float, default=2.0,
        help="refresh interval in seconds (default 2)",
    )
    p_watch.add_argument(
        "--once", action="store_true",
        help="render the current state once and exit",
    )
    p_watch.add_argument(
        "--max-updates", type=int, default=None, metavar="N",
        help="stop after N refreshes (default: until the run ends)",
    )
    p_watch.add_argument(
        "--prom", metavar="PATH", default=None,
        help="keep a Prometheus text-exposition snapshot current at PATH "
        "(scrape-ready, e.g. for a textfile collector)",
    )

    args = parser.parse_args(argv)
    configure_logging(args.verbose, args.quiet)
    import json as _json

    if args.command == "watch":
        from repro.obs import watch as obs_watch

        dash = obs_watch(
            args.path,
            interval_s=args.interval,
            once=args.once,
            max_updates=args.max_updates,
            prom_path=args.prom,
        )
        if dash.n_records == 0:
            print(f"repro-obs: no records read from {args.path}", file=sys.stderr)
            return 1
        return 0

    try:
        if args.command == "summarize":
            summary = summarize_jsonl(args.path)
        elif args.command == "profile":
            from repro.obs import profile_jsonl

            summary = profile_jsonl(args.path)
        else:
            from repro.obs import AuditConfig, audit_jsonl

            summary = audit_jsonl(args.path, AuditConfig(
                baseline_power_w=args.baseline_w,
                baseline_rule=args.baseline_rule,
                violation_budget=args.violation_budget,
            ))
    except OSError as exc:
        print(f"repro-obs: cannot read {args.path}: {exc.strerror or exc}", file=sys.stderr)
        return 1
    except ValueError as exc:
        print(f"repro-obs: {exc}", file=sys.stderr)
        return 1

    if args.command == "audit" and args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            _json.dump(summary, fh, indent=2, default=str)
        print(f"audit report written to {args.output}", file=sys.stderr)
    if args.json:
        print(_json.dumps(summary, indent=2, default=str))
    else:
        if args.command == "summarize":
            text = render_summary(summary, title=args.path)
            if summary.get("n_malformed"):
                text += f"\n\n({summary['n_malformed']} malformed lines skipped)"
            print(text)
        elif args.command == "profile":
            from repro.obs import render_profile

            print(render_profile(summary, title=args.path))
        else:
            from repro.obs import render_audit

            print(render_audit(summary, title=args.path))
    if args.command == "audit" and not summary["slo"]["passed"]:
        return 1
    return 0


def main_faults(argv: Optional[List[str]] = None) -> int:
    """Validate or generate fault-injection scenario files."""
    parser = argparse.ArgumentParser(
        prog="repro-faults",
        description="Work with fault-injection scenario specs (JSON) for "
        "repro-testbed / repro-largescale --faults.",
    )
    add_verbosity_flags(parser)
    sub = parser.add_subparsers(dest="command", required=True)

    p_val = sub.add_parser(
        "validate", help="check a scenario file and summarize its timeline"
    )
    p_val.add_argument("path", help="fault spec JSON file")

    p_gen = sub.add_parser(
        "generate",
        help="write a random (seeded, reproducible) scenario file",
    )
    p_gen.add_argument("output", help="output JSON path")
    p_gen.add_argument("--horizon", type=float, default=600.0,
                       help="scenario length in seconds")
    p_gen.add_argument("--server-ids", nargs="+", default=["T0", "T1", "T2", "T3"],
                       help="servers faults may target (testbed default: T0..T3)")
    p_gen.add_argument("--app-ids", nargs="*", default=[],
                       help="applications sensor faults may target")
    p_gen.add_argument("--seed", type=int, default=0)
    p_gen.add_argument("--crash-rate", type=float, default=0.5,
                       help="server crashes per hour (Poisson)")
    p_gen.add_argument("--throttle-rate", type=float, default=0.5,
                       help="thermal throttles per hour (Poisson)")
    p_gen.add_argument("--sensor-rate", type=float, default=0.0,
                       help="sensor outages per hour (Poisson)")
    p_gen.add_argument("--mean-duration", type=float, default=600.0,
                       help="mean fault duration in seconds (exponential)")

    args = parser.parse_args(argv)
    configure_logging(args.verbose, args.quiet)
    from repro.faults import FaultSchedule, validate_spec

    if args.command == "validate":
        import json as _json

        try:
            with open(args.path, "r", encoding="utf-8") as fh:
                spec = _json.load(fh)
        except OSError as exc:
            print(f"repro-faults: cannot read {args.path}: {exc.strerror or exc}",
                  file=sys.stderr)
            return 1
        except ValueError as exc:
            print(f"repro-faults: {args.path} is not JSON: {exc}", file=sys.stderr)
            return 1
        problems = validate_spec(spec)
        if problems:
            for p in problems:
                print(f"repro-faults: {p}", file=sys.stderr)
            return 1
        schedule = FaultSchedule.from_spec(spec)
        by_kind: dict = {}
        for ev in schedule.events:
            by_kind[ev.kind] = by_kind.get(ev.kind, 0) + 1
        kinds = ", ".join(f"{k}={n}" for k, n in sorted(by_kind.items()))
        last = max((ev.end_time_s for ev in schedule.events), default=0.0)
        print(
            f"{args.path}: OK — {len(schedule)} events ({kinds}), "
            f"seed {schedule.seed}, last transition at {last:.0f}s"
        )
        return 0

    schedule = FaultSchedule.random(
        horizon_s=args.horizon,
        server_ids=args.server_ids,
        app_ids=args.app_ids,
        seed=args.seed,
        crash_rate_per_hour=args.crash_rate,
        throttle_rate_per_hour=args.throttle_rate,
        sensor_rate_per_hour=args.sensor_rate,
        mean_duration_s=args.mean_duration,
    )
    schedule.to_json(args.output)
    print(f"wrote {args.output}: {len(schedule)} events over {args.horizon:.0f}s "
          f"(seed {args.seed})")
    return 0


def main_bench(argv: Optional[List[str]] = None) -> int:
    """Run the tracked performance suite (see docs/PERFORMANCE.md)."""
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Time the hot-path fast lanes against their reference "
        "paths (MPC solve, Minimum Slack, IPAC, DES, large-scale run).",
    )
    parser.add_argument(
        "--scale", choices=["full", "smoke"], default="full",
        help="'full' reproduces the committed BENCH_perf.json numbers; "
        "'smoke' is the reduced CI variant",
    )
    parser.add_argument(
        "--cases", nargs="+", default=None, metavar="CASE",
        help="subset of cases to run, space- or comma-separated "
        "(e.g. --cases des,des_hybrid; default: all)",
    )
    parser.add_argument(
        "--output", metavar="PATH", default=None,
        help="write the JSON report here (e.g. BENCH_perf.json)",
    )
    parser.add_argument(
        "--check-against", metavar="PATH", default=None,
        help="compare speedups against a committed baseline report; "
        "exit 1 on a regression beyond --tolerance",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.25,
        help="allowed fractional speedup regression vs the baseline "
        "(default 0.25)",
    )
    add_verbosity_flags(parser)
    args = parser.parse_args(argv)
    configure_logging(args.verbose, args.quiet)
    from repro.bench import compare_to_baseline, run_suite, write_report

    if args.cases is not None:
        # Accept both "--cases des des_hybrid" and "--cases des,des_hybrid".
        args.cases = [c for part in args.cases for c in part.split(",") if c]
    try:
        report = run_suite(scale=args.scale, cases=args.cases)
    except KeyError as exc:
        print(f"repro-bench: {exc.args[0]}", file=sys.stderr)
        return 2
    from repro.bench.perf_suite import CaseResult

    print(f"perf suite ({args.scale}):")
    print(f"{'case':<12} {'fast':>11} {'reference':>11}  {'speedup':>7}")
    for case in report["cases"].values():
        print(CaseResult(**case).row())
    if args.output:
        write_report(report, args.output)
        print(f"report written to {args.output}")
    if args.check_against:
        import json as _json

        try:
            with open(args.check_against, "r", encoding="utf-8") as fh:
                baseline = _json.load(fh)
        except OSError as exc:
            print(
                f"repro-bench: cannot read {args.check_against}: "
                f"{exc.strerror or exc}",
                file=sys.stderr,
            )
            return 1
        failures = compare_to_baseline(report, baseline, args.tolerance)
        if failures:
            for f in failures:
                print(f"repro-bench: REGRESSION {f}", file=sys.stderr)
            return 1
        print(f"no regressions vs {args.check_against} "
              f"(tolerance {args.tolerance:.0%})")
    return 0


def _load_scenario(name_or_path: str):
    """Resolve a CLI scenario argument: registry name or JSON file path.

    Returns the spec, or raises SystemExit(1) with a message on stderr.
    """
    import json as _json

    from repro.engine.scenario import ScenarioError, ScenarioSpec, builtin_registry

    registry = builtin_registry()
    if name_or_path in registry:
        return registry.get(name_or_path)
    try:
        with open(name_or_path, "r", encoding="utf-8") as fh:
            doc = _json.load(fh)
    except OSError:
        print(
            f"unknown scenario {name_or_path!r} (and no such file); "
            f"known: {', '.join(registry.names())}",
            file=sys.stderr,
        )
        raise SystemExit(1)
    except ValueError as exc:
        print(f"{name_or_path} is not JSON: {exc}", file=sys.stderr)
        raise SystemExit(1)
    try:
        return ScenarioSpec.from_dict(doc)
    except ScenarioError as exc:
        print(f"{name_or_path}: {exc}", file=sys.stderr)
        raise SystemExit(1)


def main_scenario(argv: Optional[List[str]] = None) -> int:
    """List and validate kernel scenario specs."""
    parser = argparse.ArgumentParser(
        prog="repro-scenario",
        description="Inspect the named engine scenarios runnable with "
        "repro-sim --scenario.",
    )
    add_verbosity_flags(parser)
    sub = parser.add_subparsers(dest="command", required=True)
    p_list = sub.add_parser("list", help="show every registered scenario")
    p_list.add_argument(
        "--json", action="store_true",
        help="print the full specs as JSON instead of a table",
    )
    p_val = sub.add_parser(
        "validate",
        help="check a scenario (registry name or JSON spec file)",
    )
    p_val.add_argument("scenario", help="registered name or path to a spec JSON")
    p_show = sub.add_parser(
        "show",
        help="print a fully-resolved scenario spec as JSON "
        "(editable, then runnable with repro-sim --scenario FILE)",
    )
    p_show.add_argument("scenario", help="registered name or path to a spec JSON")

    args = parser.parse_args(argv)
    configure_logging(args.verbose, args.quiet)
    from repro.engine.scenario import builtin_registry

    if args.command == "list":
        registry = builtin_registry()
        if args.json:
            import json as _json

            print(_json.dumps([s.to_dict() for s in registry], indent=2))
            return 0
        rows = [[s.name, s.harness, "yes" if s.faults else "-", s.description]
                for s in registry]
        print(format_table(
            ["name", "harness", "faults", "description"], rows,
            title=f"{len(registry)} scenarios",
        ))
        return 0

    spec = _load_scenario(args.scenario)
    if args.command == "show":
        import json as _json

        print(_json.dumps(spec.to_dict(), indent=2, sort_keys=True))
        return 0

    problems = spec.validate()
    if problems:
        for p in problems:
            print(f"repro-scenario: {spec.name}: {p}", file=sys.stderr)
        return 1
    engine_desc = f"{spec.harness} harness"
    if spec.faults:
        engine_desc += f", {len(spec.faults.get('events', []))} fault events"
    print(f"{spec.name}: OK — {engine_desc}")
    return 0


def main_sim(argv: Optional[List[str]] = None) -> int:
    """Run a named scenario through the control-plane kernel."""
    parser = argparse.ArgumentParser(
        prog="repro-sim",
        description="Run a scenario (see repro-scenario list) through the "
        "unified engine, optionally checkpointing mid-run or resuming "
        "from a checkpoint.",
    )
    parser.add_argument(
        "--scenario", required=True, metavar="NAME",
        help="registered scenario name, or path to a scenario spec JSON",
    )
    parser.add_argument(
        "--trace-jsonl", metavar="PATH", default=None,
        help="record telemetry (spans, events, metrics) to a JSONL file",
    )
    parser.add_argument(
        "--checkpoint", metavar="PATH", default=None,
        help="with --checkpoint-at: write the mid-run checkpoint here and stop",
    )
    parser.add_argument(
        "--checkpoint-at", type=int, default=None, metavar="K",
        help="stop after K control periods and save --checkpoint",
    )
    parser.add_argument(
        "--resume", metavar="PATH", default=None,
        help="restore this checkpoint (same scenario!) and run to completion",
    )
    parser.add_argument(
        "--control-mode", choices=("fleet", "scalar"), default=None,
        help="override the scenario's control path (testbed: fleet "
        "batches all apps' sysid/MPC through the grouped kernels, "
        "scalar is the bit-reproducible per-app loop; largescale/"
        "sharded runs are fleet-vectorized either way)",
    )
    add_verbosity_flags(parser)
    args = parser.parse_args(argv)
    configure_logging(args.verbose, args.quiet)
    if (args.checkpoint is None) != (args.checkpoint_at is None):
        parser.error("--checkpoint and --checkpoint-at go together")
    if args.resume and args.checkpoint:
        parser.error("--resume and --checkpoint are mutually exclusive")

    from repro.engine.kernel import CheckpointError, ControlPlane
    from repro.engine.scenario import ScenarioError

    spec = _load_scenario(args.scenario)
    if args.control_mode is not None:
        import dataclasses

        spec = dataclasses.replace(
            spec, params={**spec.params, "control_mode": args.control_mode}
        )
    try:
        engine, backend = spec.build()
    except ScenarioError as exc:
        print(f"repro-sim: {exc}", file=sys.stderr)
        return 1
    try:
        with _telemetry_scope(args.trace_jsonl):
            if args.resume:
                try:
                    engine.restore(ControlPlane.load_checkpoint(args.resume))
                except (OSError, CheckpointError) as exc:
                    print(f"repro-sim: cannot resume {args.resume}: {exc}",
                          file=sys.stderr)
                    return 1
                print(
                    f"resumed {spec.name} at period {engine.k}/{engine.n_periods}"
                )
            else:
                backend.start()
            if args.checkpoint is not None:
                engine.run(until_period=args.checkpoint_at)
                engine.save_checkpoint(args.checkpoint)
                print(
                    f"checkpoint at period {engine.k}/{engine.n_periods} "
                    f"written to {args.checkpoint}"
                )
                if args.trace_jsonl:
                    print(f"telemetry written to {args.trace_jsonl}")
                return 0
            engine.run()
            result = backend.result()
    finally:
        # The sharded backend may own a worker pool; everything else
        # has no close() and is skipped.
        closer = getattr(backend, "close", None)
        if closer is not None:
            closer()
    if spec.harness == "testbed":
        from repro.sim.report import testbed_report

        cfg = backend.config
        print(testbed_report(result, n_apps=cfg.n_apps, setpoint_ms=cfg.setpoint_ms))
    else:
        rows = [[
            result.scheme, result.n_vms, f"{result.total_energy_wh:.1f}",
            f"{result.energy_per_vm_wh:.1f}", result.migrations,
            f"{result.mean_active_servers:.1f}", result.overload_server_steps,
        ]]
        title = f"{spec.name}: {result.n_steps} steps of {result.step_s:.0f}s"
        if "n_pods" in result.info:
            title += (
                f" · {int(result.info['n_pods'])} pods on "
                f"{int(result.info['workers'])} workers"
            )
        print(format_table(
            ["scheme", "#VMs", "energy Wh", "Wh/VM", "moves", "avg active",
             "overload steps"],
            rows,
            title=title,
        ))
    if args.trace_jsonl:
        print(f"telemetry written to {args.trace_jsonl}")
    return 0


if __name__ == "__main__":
    sys.exit(main_testbed())
