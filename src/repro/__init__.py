"""repro — performance-assured power optimization for virtualized data centers.

A from-scratch Python reproduction of *"Power Optimization with
Performance Assurance for Multi-tier Applications in Virtualized Data
Centers"* (Yefu Wang and Xiaorui Wang, ICPP 2010): a MIMO model-predictive
response-time controller per multi-tier application, server-level CPU
arbitration with DVFS, and an incremental power-aware VM consolidation
algorithm (IPAC) benchmarked against pMapper.

Quick start::

    from repro import TestbedConfig, TestbedExperiment
    result = TestbedExperiment(TestbedConfig(duration_s=300.0)).run()
    print(result.rt_summary(0))

See README.md for the architecture overview and DESIGN.md for the
paper-to-module map.
"""

from repro.apps import AppSpec, MultiTierApp
from repro.cluster import DataCenter, Server, ServerSpec, VM
from repro.control import ARXModel, MPCConfig, MPCController
from repro.core import (
    ControllerConfig,
    CPUResourceArbitrator,
    IPACConfig,
    PowerManager,
    PowerManagerConfig,
    ResponseTimeController,
    ipac,
    pac,
    pmapper,
)
from repro.obs import (
    InMemoryBackend,
    JsonlBackend,
    MetricsRegistry,
    Telemetry,
    get_telemetry,
    set_telemetry,
    use_telemetry,
)
from repro.sim.largescale import LargeScaleConfig, LargeScaleResult, run_largescale
from repro.sim.testbed import TestbedConfig, TestbedExperiment, TestbedResult
from repro.sysid import fit_arx, identify_app_model
from repro.traces import TraceConfig, UtilizationTrace, generate_trace

__version__ = "1.0.0"

__all__ = [
    "AppSpec",
    "MultiTierApp",
    "DataCenter",
    "Server",
    "ServerSpec",
    "VM",
    "ARXModel",
    "MPCConfig",
    "MPCController",
    "ControllerConfig",
    "CPUResourceArbitrator",
    "IPACConfig",
    "PowerManager",
    "PowerManagerConfig",
    "ResponseTimeController",
    "ipac",
    "pac",
    "pmapper",
    "InMemoryBackend",
    "JsonlBackend",
    "MetricsRegistry",
    "Telemetry",
    "get_telemetry",
    "set_telemetry",
    "use_telemetry",
    "LargeScaleConfig",
    "LargeScaleResult",
    "run_largescale",
    "TestbedConfig",
    "TestbedExperiment",
    "TestbedResult",
    "fit_arx",
    "identify_app_model",
    "TraceConfig",
    "UtilizationTrace",
    "generate_trace",
    "__version__",
]
